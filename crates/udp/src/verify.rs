//! Static verification of UDP lane programs.
//!
//! The UDP's pitch is *software* programmability: recoding pipelines are
//! user-supplied lane programs, not fixed-function hardware. That cuts both
//! ways — a bad program used to surface only at runtime, as a trap on one of
//! 64 lanes or a silently wrong decode. This module is the bytecode-verifier
//! analogue for lane programs: a set of static analyses over the symbolic
//! [`Program`] CFG, cross-checked against the encoded [`Image`], that runs
//! before anything is fanned out to the accelerator.
//!
//! Seven analyses:
//!
//! 1. **Reachability** — CFG construction from jump / branch / dispatch /
//!    group edges; unreachable blocks and programs with no reachable `halt`
//!    are reported.
//! 2. **Register initialization** — forward *must-initialize* dataflow over
//!    the 16 registers (intersection at joins). Reads of never-written
//!    registers are flagged per path; a backward liveness pass additionally
//!    flags ALU results that no path ever reads (dead writes).
//! 3. **Scratchpad bounds** — interval abstract interpretation over register
//!    values (join = hull, widening after repeated visits) proves or refutes
//!    that every load/store lands inside the 64 KB scratchpad, and checks
//!    the `r15` output contract at halt. Stream-consuming loops that never
//!    re-check `inrem` are flagged as potential input over-runs.
//! 4. **Termination / cycle budget** — Tarjan SCCs find loops; a loop with
//!    no exit edge (or whose only exits test loop-invariant registers) is a
//!    `Diverges` finding, and each loop's worst-case per-iteration cycle
//!    cost is reported so callers can budget against
//!    [`RunConfig::cycle_limit`](crate::lane::RunConfig). Acyclic programs
//!    get a longest-path cycle bound checked against the budget.
//! 5. **Dispatch tables** — multi-way dispatch completeness and target
//!    validity, at the image level: uncovered symbols that would trap,
//!    uncovered symbols that *alias into foreign code words* (EffCLiP packs
//!    singletons into holes, so a missing entry may silently execute
//!    unrelated code), group offsets unreachable at the dispatch width, and
//!    encode/decode round-trip mismatches.
//! 6. **Cycle-bound certification** — a WCET-style pass that folds the
//!    interpreter's per-block cost model through the CFG and derives a
//!    [`CycleBound`] envelope per program: a guaranteed minimum (shortest
//!    path to a reachable halt) and, when every loop makes provable
//!    progress (consumes stream bits or monotonically advances a scratchpad
//!    cursor it dereferences), an affine maximum
//!    `fixed + per_input_bit × input_bits` that every *completing* run
//!    respects. Programs whose loops cannot be bounded, or whose certified
//!    maximum exceeds the cycle budget, get `cycle-bound` warnings.
//! 7. **Predecode translation validation** — a word-by-word equivalence
//!    proof that the [`Image`]'s flat predecode table denotes exactly the
//!    same actions and transition as word-at-a-time
//!    [`decode_word`](crate::machine::decode_word) for *every* code
//!    address (holes included). A divergence — a stale or tampered table —
//!    is an `Error` that gates the accelerator, which is the admission
//!    discipline a JIT backend will inherit.
//!
//! Findings carry block id, action slot, and — when assembled from text via
//! [`crate::asm::assemble_text_with_map`] — source line numbers. The
//! encoder attaches a [`VerifyReport`] to every [`Image`];
//! [`Lane::run`](crate::lane::Lane::run) refuses images with `Error`
//! findings unless the caller opts out
//! ([`RunConfig::allow_unverified`](crate::lane::RunConfig)).

use crate::asm::SourceMap;
use crate::effclip::Placement;
use crate::error::UdpError;
use crate::isa::{Action, Block, BlockId, Transition, Width, NUM_REGS, SCRATCHPAD_BYTES};
use crate::machine::{DecodedTransition, Image};
use crate::program::Program;
use std::fmt;

/// Finding severity, ordered `Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Diagnostic only (e.g. an access that cannot be *proved* in bounds).
    Info,
    /// Almost certainly a bug, but the runtime contains it (trap, not UB).
    Warn,
    /// The program is rejected by the accelerator gate.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warn => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which analysis produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Analysis {
    /// CFG reachability (unreachable blocks, no reachable halt).
    Reachability,
    /// Must-initialize register dataflow.
    RegisterInit,
    /// Backward liveness (ALU results never read).
    DeadWrite,
    /// Interval analysis of scratchpad addresses.
    ScratchpadBounds,
    /// Stream-unit over-run checks.
    StreamBounds,
    /// Loop/termination and cycle-budget checks.
    Termination,
    /// Dispatch-table completeness/validity (image level).
    DispatchTable,
    /// `r15`/`r14` output-range contract at halt.
    OutputContract,
    /// Static cycle-bound certification (WCET envelope).
    CycleBound,
    /// Predecode-table ≡ `decode_word` equivalence proof (image level).
    TranslationValidation,
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Analysis::Reachability => "reachability",
            Analysis::RegisterInit => "register-init",
            Analysis::DeadWrite => "dead-write",
            Analysis::ScratchpadBounds => "scratchpad-bounds",
            Analysis::StreamBounds => "stream-bounds",
            Analysis::Termination => "termination",
            Analysis::DispatchTable => "dispatch-table",
            Analysis::OutputContract => "output-contract",
            Analysis::CycleBound => "cycle-bound",
            Analysis::TranslationValidation => "translation-validation",
        };
        write!(f, "{s}")
    }
}

/// One verifier finding, anchored to a block (and action slot, if any).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity class.
    pub severity: Severity,
    /// Producing analysis.
    pub analysis: Analysis,
    /// Block the finding anchors to.
    pub block: BlockId,
    /// Action slot within the block (`None` = the transition / whole block).
    pub slot: Option<usize>,
    /// 1-based source line, when a [`SourceMap`] has been attached.
    pub line: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] block {}", self.severity, self.analysis, self.block)?;
        if let Some(s) = self.slot {
            write!(f, " slot {s}")?;
        }
        if let Some(l) = self.line {
            write!(f, " (line {l})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Worst-case cost summary for one CFG loop (maximal SCC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopSummary {
    /// Blocks in the loop, ascending.
    pub blocks: Vec<BlockId>,
    /// Upper bound on the cycle cost of one full traversal of the loop
    /// (sum of member block costs).
    pub max_iter_cycles: u64,
    /// Number of edges leaving the loop.
    pub exits: usize,
}

/// Certified affine worst-case cycle model: `fixed + per_input_bit × bits`.
///
/// Every *completing* (non-trapping, in-budget) run of the program on an
/// input of `bits` stream bits finishes in at most
/// [`max_for(bits)`](MaxBound::max_for) modeled cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxBound {
    /// Input-independent cycle cost (setup, teardown, cursor-driven loops).
    pub fixed: u64,
    /// Cycles chargeable to each consumed input bit.
    pub per_input_bit: u64,
}

impl MaxBound {
    /// Evaluates the affine model for an input of `input_bits` stream bits.
    pub fn max_for(&self, input_bits: u64) -> u64 {
        self.fixed.saturating_add(self.per_input_bit.saturating_mul(input_bits))
    }
}

impl fmt::Display for MaxBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.per_input_bit == 0 {
            write!(f, "{}", self.fixed)
        } else {
            write!(f, "{} + {}·bits", self.fixed, self.per_input_bit)
        }
    }
}

/// Statically certified cycle envelope for one program.
///
/// `min` is a guaranteed lower bound (shortest CFG path from the entry to a
/// reachable halt, full block costs charged); `max` is the affine upper
/// bound, present only when every reachable loop makes provable progress.
/// The envelope holds for completing runs of gated-clean programs —
/// [`Lane::run`](crate::lane::Lane::run) debug-asserts it and
/// `recode trace-check --bounds` enforces it on stored traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleBound {
    /// Cycles every completing run spends at minimum.
    pub min: u64,
    /// Affine worst case, when certifiable (`None` = loops not boundable).
    pub max: Option<MaxBound>,
}

impl CycleBound {
    /// `true` iff `cycles` lies inside the envelope for an input of
    /// `input_bits` stream bits (an absent `max` only checks the minimum).
    pub fn contains(&self, cycles: u64, input_bits: u64) -> bool {
        cycles >= self.min && self.max.is_none_or(|m| cycles <= m.max_for(input_bits))
    }
}

impl fmt::Display for CycleBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            Some(m) => write!(f, "[{}, {m}]", self.min),
            None => write!(f, "[{}, unbounded)", self.min),
        }
    }
}

/// Verifier configuration: the runtime contract the analyses check against.
#[derive(Debug, Clone, Copy)]
pub struct VerifyConfig {
    /// Scratchpad address `r14` holds at entry (the output base).
    pub out_base: u32,
    /// Cycle budget the program must respect.
    pub cycle_limit: u64,
    /// Largest input (in stream bits) the certified maximum is evaluated at
    /// when checking it against `cycle_limit`.
    pub max_input_bits: u64,
    /// Budget for the certified per-input-bit cycle cost; a certified
    /// `per_input_bit` above this draws a `cycle-bound` warning.
    pub per_bit_budget: u64,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        // out_base/cycle_limit mirror `RunConfig::default()`. 2^20 input
        // bits is a comfortably oversized compressed block (the pipeline
        // frames 8 KiB blocks); 64 cycles/bit is ~4× the worst shipped
        // program, so budget warnings flag real cost explosions, not noise.
        VerifyConfig {
            out_base: (SCRATCHPAD_BYTES / 2) as u32,
            cycle_limit: 200_000_000,
            max_input_bits: 1 << 20,
            per_bit_budget: 64,
        }
    }
}

/// Severity-ranked result of verifying one program.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Program name.
    pub program: String,
    /// Findings, sorted most severe first (then by block id).
    pub findings: Vec<Finding>,
    /// Total blocks in the program.
    pub blocks: usize,
    /// Blocks reachable from the entry.
    pub reachable: usize,
    /// Longest-path cycle bound when the CFG is acyclic (`None` = cyclic).
    pub max_acyclic_cycles: Option<u64>,
    /// Per-loop worst-case iteration costs.
    pub loops: Vec<LoopSummary>,
    /// Certified cycle envelope (`None` iff no halt is reachable).
    pub cycle_bound: Option<CycleBound>,
}

impl VerifyReport {
    /// An empty (all-clean) report for `program`.
    pub fn empty(program: impl Into<String>) -> Self {
        VerifyReport {
            program: program.into(),
            findings: Vec::new(),
            blocks: 0,
            reachable: 0,
            max_acyclic_cycles: None,
            loops: Vec::new(),
            cycle_bound: None,
        }
    }

    fn count(&self, s: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == s).count()
    }

    /// Number of `Error` findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of `Warn` findings.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Number of `Info` findings.
    pub fn info_count(&self) -> usize {
        self.count(Severity::Info)
    }

    /// `true` when the report carries no `Error` or `Warn` findings
    /// (`Info` findings — unprovable-but-plausible facts — are allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0 && self.warn_count() == 0
    }

    /// The most severe finding class present, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// The accelerator admission gate: `Err` iff any `Error` finding.
    ///
    /// # Errors
    /// [`UdpError::Verify`] carrying the rendered report.
    pub fn gate(&self) -> Result<(), UdpError> {
        if self.error_count() == 0 {
            return Ok(());
        }
        Err(UdpError::Verify {
            program: self.program.clone(),
            errors: self.error_count(),
            details: self.to_string(),
        })
    }

    /// Attaches source line numbers from the assembler's [`SourceMap`].
    pub fn attach_lines(&mut self, map: &SourceMap) {
        for f in &mut self.findings {
            f.line = map.line_for(f.block, f.slot);
        }
    }

    fn push(
        &mut self,
        severity: Severity,
        analysis: Analysis,
        block: BlockId,
        slot: Option<usize>,
        message: String,
    ) {
        self.findings.push(Finding { severity, analysis, block, slot, line: None, message });
    }

    fn finalize(&mut self) {
        self.findings.sort_by(|a, b| {
            b.severity.cmp(&a.severity).then(a.block.cmp(&b.block)).then(a.slot.cmp(&b.slot))
        });
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verify `{}`: {} error(s), {} warning(s), {} info — {}/{} blocks reachable",
            self.program,
            self.error_count(),
            self.warn_count(),
            self.info_count(),
            self.reachable,
            self.blocks,
        )?;
        if let Some(b) = self.cycle_bound {
            writeln!(f, "  certified cycle envelope: {b}")?;
        }
        match self.max_acyclic_cycles {
            Some(c) => writeln!(f, "  worst-case cycles (acyclic): {c}")?,
            None => {
                for l in &self.loops {
                    writeln!(
                        f,
                        "  loop over {} block(s) [{}..]: ≤{} cycles/iteration, {} exit(s)",
                        l.blocks.len(),
                        l.blocks.first().copied().unwrap_or(0),
                        l.max_iter_cycles,
                        l.exits,
                    )?;
                }
            }
        }
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Action/transition register effects
// ---------------------------------------------------------------------------

/// Registers an action reads (before any write it performs).
fn action_reads(a: Action) -> Vec<u8> {
    match a {
        Action::LoadImm { .. }
        | Action::InSym { .. }
        | Action::InSymLe { .. }
        | Action::PeekSym { .. }
        | Action::SkipSym { .. }
        | Action::InRem { .. } => vec![],
        Action::Mov { rs, .. }
        | Action::AddI { rs, .. }
        | Action::ShlI { rs, .. }
        | Action::ShrI { rs, .. }
        | Action::SkipReg { rs } => vec![rs],
        Action::Add { rs, rt, .. }
        | Action::Sub { rs, rt, .. }
        | Action::And { rs, rt, .. }
        | Action::Or { rs, rt, .. }
        | Action::Xor { rs, rt, .. } => vec![rs, rt],
        Action::Load { base, .. } | Action::LoadInc { base, .. } => vec![base],
        Action::Store { rs, base, .. } | Action::StoreInc { rs, base, .. } => vec![rs, base],
    }
}

/// Registers an action writes.
fn action_writes(a: Action) -> Vec<u8> {
    match a {
        Action::LoadImm { rd, .. }
        | Action::Mov { rd, .. }
        | Action::Add { rd, .. }
        | Action::Sub { rd, .. }
        | Action::And { rd, .. }
        | Action::Or { rd, .. }
        | Action::Xor { rd, .. }
        | Action::AddI { rd, .. }
        | Action::ShlI { rd, .. }
        | Action::ShrI { rd, .. }
        | Action::Load { rd, .. }
        | Action::InSym { rd, .. }
        | Action::InSymLe { rd, .. }
        | Action::PeekSym { rd, .. }
        | Action::InRem { rd } => vec![rd],
        Action::LoadInc { rd, base, .. } => vec![rd, base],
        Action::StoreInc { base, .. } => vec![base],
        Action::Store { .. } | Action::SkipSym { .. } | Action::SkipReg { .. } => vec![],
    }
}

/// Registers a transition reads.
fn transition_reads(t: &Transition) -> Vec<u8> {
    match *t {
        Transition::Branch { rs, rt, .. } => vec![rs, rt],
        Transition::DispatchReg { rs, .. } => vec![rs],
        _ => vec![],
    }
}

/// Stream bits an action is guaranteed to consume (0 = none).
fn action_consumes_stream(a: Action) -> bool {
    matches!(
        a,
        Action::InSym { .. }
            | Action::InSymLe { .. }
            | Action::SkipSym { .. }
            | Action::SkipReg { .. }
    )
}

/// Stream bits an action consumes on *every* execution. Strictly tighter
/// than [`action_consumes_stream`]: `skipreg` may skip 0 bits (the stream
/// unit accepts `skip(0)`), so it gives no termination-progress guarantee
/// even though it touches the stream.
fn action_always_consumes_stream(a: Action) -> bool {
    // InSym/SkipSym bits and InSymLe bytes are ISA-validated to be ≥ 1.
    matches!(a, Action::InSym { .. } | Action::InSymLe { .. } | Action::SkipSym { .. })
}

/// `true` for pure ALU ops whose only effect is the register write — the
/// candidates for dead-write findings.
fn is_pure_alu(a: Action) -> bool {
    matches!(
        a,
        Action::LoadImm { .. }
            | Action::Mov { .. }
            | Action::Add { .. }
            | Action::Sub { .. }
            | Action::And { .. }
            | Action::Or { .. }
            | Action::Xor { .. }
            | Action::AddI { .. }
            | Action::ShlI { .. }
            | Action::ShrI { .. }
    )
}

// ---------------------------------------------------------------------------
// CFG
// ---------------------------------------------------------------------------

struct Cfg {
    succ: Vec<Vec<BlockId>>,
    reachable: Vec<bool>,
}

impl Cfg {
    fn build(p: &Program) -> Cfg {
        let n = p.blocks.len();
        let mut succ: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (i, b) in p.blocks.iter().enumerate() {
            match b.transition {
                Transition::Halt => {}
                Transition::Jump(t) => succ[i].push(t),
                Transition::Branch { taken, fallthrough, .. } => {
                    succ[i].push(taken);
                    succ[i].push(fallthrough);
                }
                Transition::DispatchSym { group, .. }
                | Transition::DispatchPeek { group, .. }
                | Transition::DispatchReg { group, .. } => {
                    if let Some(entries) = p.groups.get(group as usize) {
                        for &(_, bid) in entries {
                            succ[i].push(bid);
                        }
                    }
                }
            }
            succ[i].sort_unstable();
            succ[i].dedup();
        }
        let mut reachable = vec![false; n];
        let mut work = vec![p.entry];
        while let Some(b) = work.pop() {
            let bi = b as usize;
            if reachable[bi] {
                continue;
            }
            reachable[bi] = true;
            work.extend_from_slice(&succ[bi]);
        }
        Cfg { succ, reachable }
    }
}

// ---------------------------------------------------------------------------
// Intervals
// ---------------------------------------------------------------------------

const IV_MIN: i128 = i64::MIN as i128;
const IV_MAX: i128 = i64::MAX as i128;

/// Signed 64-bit value interval (registers are interpreted the way the lane
/// interprets them for addressing: as `i64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Iv {
    lo: i128,
    hi: i128,
}

impl Iv {
    const TOP: Iv = Iv { lo: IV_MIN, hi: IV_MAX };

    fn exact(v: i128) -> Iv {
        Iv { lo: v, hi: v }
    }

    fn range(lo: i128, hi: i128) -> Iv {
        Iv { lo, hi }
    }

    fn clamp(self) -> Iv {
        if self.lo < IV_MIN || self.hi > IV_MAX {
            Iv::TOP
        } else {
            self
        }
    }

    fn add(self, o: Iv) -> Iv {
        Iv { lo: self.lo + o.lo, hi: self.hi + o.hi }.clamp()
    }

    fn sub(self, o: Iv) -> Iv {
        Iv { lo: self.lo - o.hi, hi: self.hi - o.lo }.clamp()
    }

    fn shl(self, k: u8) -> Iv {
        if k >= 64 {
            return Iv::TOP;
        }
        if self.lo < 0 {
            return Iv::TOP;
        }
        Iv { lo: self.lo << k, hi: self.hi << k }.clamp()
    }

    fn shr(self, k: u8) -> Iv {
        if k == 0 {
            return self;
        }
        if self.lo >= 0 {
            return Iv { lo: self.lo >> k, hi: self.hi >> k };
        }
        // Logical shift of a possibly-negative u64: result fits in 64-k bits.
        let hi = if k >= 64 { 0 } else { (u64::MAX >> k) as i128 };
        Iv { lo: 0, hi }.clamp()
    }

    fn and(self, o: Iv) -> Iv {
        // x & y is bounded above by either non-negative operand.
        match (self.lo >= 0, o.lo >= 0) {
            (true, true) => Iv { lo: 0, hi: self.hi.min(o.hi) },
            (true, false) => Iv { lo: 0, hi: self.hi },
            (false, true) => Iv { lo: 0, hi: o.hi },
            (false, false) => Iv::TOP,
        }
    }

    fn or(self, o: Iv) -> Iv {
        if self.lo >= 0 && o.lo >= 0 {
            // a|b >= max(a,b), a|b <= a+b.
            Iv { lo: self.lo.max(o.lo), hi: self.hi + o.hi }.clamp()
        } else {
            Iv::TOP
        }
    }

    fn xor(self, o: Iv) -> Iv {
        if self.lo >= 0 && o.lo >= 0 {
            Iv { lo: 0, hi: self.hi + o.hi }.clamp()
        } else {
            Iv::TOP
        }
    }

    fn join(self, o: Iv) -> Iv {
        Iv { lo: self.lo.min(o.lo), hi: self.hi.max(o.hi) }
    }

    /// Widening: bounds that moved since `prev` jump straight to ±∞.
    fn widen(self, prev: Iv) -> Iv {
        Iv {
            lo: if self.lo < prev.lo { IV_MIN } else { self.lo },
            hi: if self.hi > prev.hi { IV_MAX } else { self.hi },
        }
    }
}

impl fmt::Display for Iv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let end = |v: i128, bound: i128| -> String {
            if v == bound {
                "∞".into()
            } else {
                v.to_string()
            }
        };
        write!(f, "[{}, {}]", end(self.lo, IV_MIN), end(self.hi, IV_MAX))
    }
}

type RegState = [Iv; NUM_REGS];

fn stream_value_bound(bits: u32) -> Iv {
    if bits >= 63 {
        Iv::range(0, IV_MAX)
    } else {
        Iv::range(0, (1i128 << bits) - 1)
    }
}

/// Applies one action to an interval register state.
fn interval_step(regs: &mut RegState, a: Action) {
    let set = |regs: &mut RegState, rd: u8, v: Iv| {
        if rd != 0 {
            regs[rd as usize] = v;
        }
    };
    let get = |regs: &RegState, r: u8| -> Iv {
        if r == 0 {
            Iv::exact(0)
        } else {
            regs[r as usize]
        }
    };
    match a {
        Action::LoadImm { rd, imm } => set(regs, rd, Iv::exact(imm as i128)),
        Action::Mov { rd, rs } => set(regs, rd, get(regs, rs)),
        Action::Add { rd, rs, rt } => set(regs, rd, get(regs, rs).add(get(regs, rt))),
        Action::Sub { rd, rs, rt } => set(regs, rd, get(regs, rs).sub(get(regs, rt))),
        Action::And { rd, rs, rt } => set(regs, rd, get(regs, rs).and(get(regs, rt))),
        Action::Or { rd, rs, rt } => set(regs, rd, get(regs, rs).or(get(regs, rt))),
        Action::Xor { rd, rs, rt } => set(regs, rd, get(regs, rs).xor(get(regs, rt))),
        Action::AddI { rd, rs, imm } => {
            set(regs, rd, get(regs, rs).add(Iv::exact(imm as i128)));
        }
        Action::ShlI { rd, rs, amount } => set(regs, rd, get(regs, rs).shl(amount)),
        Action::ShrI { rd, rs, amount } => set(regs, rd, get(regs, rs).shr(amount)),
        Action::Load { rd, width, .. } => {
            let v = match width {
                Width::B8 => Iv::TOP,
                w => stream_value_bound(8 * w.bytes() as u32),
            };
            set(regs, rd, v);
        }
        Action::LoadInc { rd, base, width } => {
            let v = match width {
                Width::B8 => Iv::TOP,
                w => stream_value_bound(8 * w.bytes() as u32),
            };
            set(regs, rd, v);
            let inc = get(regs, base).add(Iv::exact(width.bytes() as i128));
            set(regs, base, inc);
        }
        Action::StoreInc { base, width, .. } => {
            let inc = get(regs, base).add(Iv::exact(width.bytes() as i128));
            set(regs, base, inc);
        }
        Action::Store { .. } | Action::SkipSym { .. } | Action::SkipReg { .. } => {}
        Action::InSym { rd, bits } => set(regs, rd, stream_value_bound(bits as u32)),
        Action::PeekSym { rd, bits } => set(regs, rd, stream_value_bound(bits as u32)),
        Action::InSymLe { rd, bytes } => {
            set(regs, rd, stream_value_bound(8 * bytes as u32));
        }
        Action::InRem { rd } => set(regs, rd, Iv::range(0, IV_MAX)),
    }
}

// ---------------------------------------------------------------------------
// Tarjan SCC
// ---------------------------------------------------------------------------

/// Maximal SCCs of the reachable CFG; only SCCs that actually contain a
/// cycle (size > 1, or a self-loop) are returned.
fn cyclic_sccs(cfg: &Cfg) -> Vec<Vec<BlockId>> {
    // Iterative Tarjan (explicit state machine) to survive deep CFGs.
    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }
    let n = cfg.succ.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut out: Vec<Vec<BlockId>> = Vec::new();

    for start in 0..n {
        if !cfg.reachable[start] || index[start] != usize::MAX {
            continue;
        }
        let mut frames = vec![Frame::Enter(start)];
        while let Some(frame) = frames.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next;
                    low[v] = next;
                    next += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    frames.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut i) => {
                    let mut descended = false;
                    while i < cfg.succ[v].len() {
                        let w = cfg.succ[v][i] as usize;
                        i += 1;
                        if index[w] == usize::MAX {
                            frames.push(Frame::Resume(v, i));
                            frames.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w as BlockId);
                            if w == v {
                                break;
                            }
                        }
                        let is_cycle =
                            comp.len() > 1 || cfg.succ[comp[0] as usize].contains(&comp[0]);
                        if is_cycle {
                            comp.sort_unstable();
                            out.push(comp);
                        }
                    }
                    // Propagate lowlink to the parent Resume frame, if any.
                    if let Some(Frame::Resume(parent, _)) = frames.last() {
                        let p = *parent;
                        low[p] = low[p].min(low[v]);
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The verifier
// ---------------------------------------------------------------------------

/// How many times a block is revisited before interval widening kicks in.
const WIDEN_AFTER: u32 = 2;

/// Runs all symbolic analyses on `program`.
///
/// Use [`verify_image`] when the encoded image is available — it adds the
/// image-level dispatch-table and round-trip checks.
pub fn verify_program(program: &Program, cfg: &VerifyConfig) -> VerifyReport {
    Verifier::new(program, cfg).run(None)
}

/// Runs all analyses, including the image-level cross-checks (dispatch
/// completeness/aliasing against real code words, encode round-trip).
pub fn verify_image(
    program: &Program,
    placement: &Placement,
    image: &Image,
    cfg: &VerifyConfig,
) -> VerifyReport {
    Verifier::new(program, cfg).run(Some((placement, image)))
}

struct Verifier<'a> {
    p: &'a Program,
    cfg: &'a VerifyConfig,
    g: Cfg,
    report: VerifyReport,
    /// Interval state at each block entry (fixpoint result).
    entry_state: Vec<RegState>,
}

impl<'a> Verifier<'a> {
    fn new(p: &'a Program, cfg: &'a VerifyConfig) -> Self {
        let g = Cfg::build(p);
        let mut report = VerifyReport::empty(p.name.clone());
        report.blocks = p.blocks.len();
        report.reachable = g.reachable.iter().filter(|&&r| r).count();
        let entry_state = vec![[Iv::TOP; NUM_REGS]; p.blocks.len()];
        Verifier { p, cfg, g, report, entry_state }
    }

    fn run(mut self, img: Option<(&Placement, &Image)>) -> VerifyReport {
        self.check_reachability();
        self.check_register_init();
        self.check_dead_writes();
        self.interval_fixpoint();
        self.check_memory_and_output();
        self.check_loops();
        self.certify_cycle_bound();
        self.check_dispatch_tables(img);
        if let Some((placement, image)) = img {
            self.cross_check_image(placement, image);
            self.check_translation_validation(placement, image);
        }
        self.report.finalize();
        self.report
    }

    // -- analysis 1: reachability ------------------------------------------

    fn check_reachability(&mut self) {
        let mut halts_reachable = false;
        for (i, b) in self.p.blocks.iter().enumerate() {
            if !self.g.reachable[i] {
                self.report.push(
                    Severity::Warn,
                    Analysis::Reachability,
                    i as BlockId,
                    None,
                    "block is unreachable from the entry (dead code)".into(),
                );
            } else if matches!(b.transition, Transition::Halt) {
                halts_reachable = true;
            }
        }
        if !halts_reachable {
            self.report.push(
                Severity::Error,
                Analysis::Reachability,
                self.p.entry,
                None,
                "no halt is reachable from the entry: the program can only end in a trap".into(),
            );
        }
    }

    // -- analysis 2a: must-initialize dataflow -----------------------------

    fn init_entry_mask() -> u16 {
        // r0 is hard-wired zero; r14 carries the output base by contract.
        (1 << 0) | (1 << 14)
    }

    fn check_register_init(&mut self) {
        let n = self.p.blocks.len();
        let all: u16 = u16::MAX;
        // in[b] = mask of registers definitely written on *every* path.
        let mut inm = vec![all; n];
        let entry = self.p.entry as usize;
        inm[entry] = Self::init_entry_mask();
        let mut work: Vec<usize> = vec![entry];
        while let Some(b) = work.pop() {
            let mut m = inm[b];
            for a in &self.p.blocks[b].actions {
                for w in action_writes(*a) {
                    m |= 1 << w;
                }
            }
            for &s in &self.g.succ[b] {
                let s = s as usize;
                let base = if s == entry { Self::init_entry_mask() } else { all };
                let next = inm[s] & m & base;
                if next != inm[s] {
                    inm[s] = next;
                    work.push(s);
                }
            }
        }
        for (i, b) in self.p.blocks.iter().enumerate() {
            if !self.g.reachable[i] {
                continue;
            }
            let mut m = inm[i];
            for (slot, a) in b.actions.iter().enumerate() {
                for r in action_reads(*a) {
                    if m & (1 << r) == 0 {
                        self.report.push(
                            Severity::Warn,
                            Analysis::RegisterInit,
                            i as BlockId,
                            Some(slot),
                            format!(
                                "r{r} is read here but no path from the entry writes it \
                                 (it reads as 0)"
                            ),
                        );
                    }
                }
                for w in action_writes(*a) {
                    if w == 0 {
                        self.report.push(
                            Severity::Info,
                            Analysis::RegisterInit,
                            i as BlockId,
                            Some(slot),
                            "write to r0 is discarded (r0 is hard-wired zero)".into(),
                        );
                    }
                    m |= 1 << w;
                }
            }
            for r in transition_reads(&b.transition) {
                if m & (1 << r) == 0 {
                    self.report.push(
                        Severity::Warn,
                        Analysis::RegisterInit,
                        i as BlockId,
                        None,
                        format!(
                            "transition reads r{r} but no path from the entry writes it \
                             (it reads as 0)"
                        ),
                    );
                }
            }
        }
    }

    // -- analysis 2b: backward liveness (dead writes) ----------------------

    fn check_dead_writes(&mut self) {
        let n = self.p.blocks.len();
        // live-in per block.
        let mut live_in = vec![0u16; n];
        let block_live_in = |blocks: &[Block], live_in: &[u16], succs: &[BlockId], b: usize| {
            let blk = &blocks[b];
            let mut live: u16 = match blk.transition {
                // The hardware reads r15 (and r14 implicitly) at halt.
                Transition::Halt => (1 << 15) | (1 << 14),
                _ => 0,
            };
            for &s in succs {
                live |= live_in[s as usize];
            }
            for r in transition_reads(&blk.transition) {
                live |= 1 << r;
            }
            for a in blk.actions.iter().rev() {
                for w in action_writes(*a) {
                    live &= !(1 << w);
                }
                for r in action_reads(*a) {
                    live |= 1 << r;
                }
            }
            live
        };
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..n).rev() {
                if !self.g.reachable[b] {
                    continue;
                }
                let li = block_live_in(&self.p.blocks, &live_in, &self.g.succ[b], b);
                if li != live_in[b] {
                    live_in[b] = li;
                    changed = true;
                }
            }
        }
        // Report pure ALU writes whose result is dead.
        for (i, blk) in self.p.blocks.iter().enumerate() {
            if !self.g.reachable[i] {
                continue;
            }
            let mut live: u16 = match blk.transition {
                Transition::Halt => (1 << 15) | (1 << 14),
                _ => 0,
            };
            for &s in &self.g.succ[i] {
                live |= live_in[s as usize];
            }
            for r in transition_reads(&blk.transition) {
                live |= 1 << r;
            }
            // Walk actions backwards, checking each write against liveness
            // *after* the action.
            let mut dead: Vec<(usize, u8)> = Vec::new();
            for (slot, a) in blk.actions.iter().enumerate().rev() {
                if is_pure_alu(*a) {
                    let rd = action_writes(*a)[0];
                    if rd != 0 && live & (1 << rd) == 0 {
                        dead.push((slot, rd));
                    }
                }
                for w in action_writes(*a) {
                    live &= !(1 << w);
                }
                for r in action_reads(*a) {
                    live |= 1 << r;
                }
            }
            for (slot, rd) in dead.into_iter().rev() {
                self.report.push(
                    Severity::Warn,
                    Analysis::DeadWrite,
                    i as BlockId,
                    Some(slot),
                    format!("r{rd} is written here but never read on any path (dead write)"),
                );
            }
        }
    }

    // -- analysis 3: interval fixpoint + memory / output checks ------------

    fn entry_regs(&self) -> RegState {
        // The lane zeroes all registers, then loads r14 with the out base.
        let mut regs = [Iv::exact(0); NUM_REGS];
        regs[14] = Iv::exact(self.cfg.out_base as i128);
        regs
    }

    fn interval_fixpoint(&mut self) {
        let entry = self.p.entry as usize;
        self.entry_state[entry] = self.entry_regs();
        let mut visits = vec![0u32; self.p.blocks.len()];
        let mut work: Vec<usize> = vec![entry];
        let mut seen = vec![false; self.p.blocks.len()];
        seen[entry] = true;
        while let Some(b) = work.pop() {
            let mut regs = self.entry_state[b];
            for a in &self.p.blocks[b].actions {
                interval_step(&mut regs, *a);
            }
            for &s in &self.g.succ[b] {
                let s = s as usize;
                let incoming = if s == entry {
                    // The entry's state is pinned by the runtime contract.
                    self.entry_regs()
                } else {
                    regs
                };
                let (next, first) = if seen[s] {
                    let prev = self.entry_state[s];
                    let mut j = [Iv::TOP; NUM_REGS];
                    let mut changed = false;
                    for r in 0..NUM_REGS {
                        let joined = prev[r].join(incoming[r]);
                        j[r] =
                            if visits[s] >= WIDEN_AFTER { joined.widen(prev[r]) } else { joined };
                        changed |= j[r] != prev[r];
                    }
                    (j, changed)
                } else {
                    (incoming, true)
                };
                if first {
                    seen[s] = true;
                    visits[s] += 1;
                    self.entry_state[s] = next;
                    work.push(s);
                }
            }
        }
    }

    fn check_memory_and_output(&mut self) {
        let pad = SCRATCHPAD_BYTES as i128;
        for (i, blk) in self.p.blocks.iter().enumerate() {
            if !self.g.reachable[i] {
                continue;
            }
            let mut regs = self.entry_state[i];
            for (slot, a) in blk.actions.iter().enumerate() {
                let access: Option<(u8, i128, usize, &str)> = match *a {
                    Action::Load { base, offset, width, .. } => {
                        Some((base, offset as i128, width.bytes(), "load"))
                    }
                    Action::Store { base, offset, width, .. } => {
                        Some((base, offset as i128, width.bytes(), "store"))
                    }
                    Action::LoadInc { base, width, .. } => Some((base, 0, width.bytes(), "load")),
                    Action::StoreInc { base, width, .. } => Some((base, 0, width.bytes(), "store")),
                    _ => None,
                };
                if let Some((base, offset, width, kind)) = access {
                    let base_iv = if base == 0 { Iv::exact(0) } else { regs[base as usize] };
                    let addr = base_iv.add(Iv::exact(offset));
                    let w = width as i128;
                    if addr.hi < 0 || addr.lo > pad - w {
                        self.report.push(
                            Severity::Error,
                            Analysis::ScratchpadBounds,
                            i as BlockId,
                            Some(slot),
                            format!(
                                "{kind} of {width} byte(s) at address {addr} is always \
                                 outside the {SCRATCHPAD_BYTES}-byte scratchpad"
                            ),
                        );
                    } else if addr.lo < 0 || addr.hi > pad - w {
                        self.report.push(
                            Severity::Info,
                            Analysis::ScratchpadBounds,
                            i as BlockId,
                            Some(slot),
                            format!(
                                "cannot prove {kind} of {width} byte(s) at address {addr} \
                                 stays inside the scratchpad (checked at runtime)"
                            ),
                        );
                    }
                }
                interval_step(&mut regs, *a);
            }
            if matches!(blk.transition, Transition::Halt) {
                let r15 = regs[15];
                let window = pad - self.cfg.out_base as i128;
                if r15.lo > window || r15.hi < 0 {
                    self.report.push(
                        Severity::Error,
                        Analysis::OutputContract,
                        i as BlockId,
                        None,
                        format!(
                            "at halt r15 (declared output bytes) is {r15}, which cannot \
                             fit the output window [{}, {SCRATCHPAD_BYTES}) — \
                             the run would trap with BadOutputRange",
                            self.cfg.out_base
                        ),
                    );
                }
            }
        }
    }

    // -- analysis 4: loops, termination, cycle budget ----------------------

    fn check_loops(&mut self) {
        let sccs = cyclic_sccs(&self.g);
        for scc in &sccs {
            let members: Vec<bool> = {
                let mut m = vec![false; self.p.blocks.len()];
                for &b in scc {
                    m[b as usize] = true;
                }
                m
            };
            let anchor = scc[0];
            // Registers written anywhere inside the loop.
            let mut written: u16 = 0;
            let mut consumes_stream = false;
            let mut checks_inrem = false;
            for &b in scc {
                let blk = &self.p.blocks[b as usize];
                for a in &blk.actions {
                    for w in action_writes(*a) {
                        written |= 1 << w;
                    }
                    if action_consumes_stream(*a) {
                        consumes_stream = true;
                    }
                    if matches!(a, Action::InRem { .. }) {
                        checks_inrem = true;
                    }
                }
                if matches!(blk.transition, Transition::DispatchSym { .. }) {
                    consumes_stream = true;
                }
            }
            // Exit edges and whether any exit can vary between iterations.
            let mut exits = 0usize;
            let mut variant_exit = false;
            for &b in scc {
                let blk = &self.p.blocks[b as usize];
                for &s in &self.g.succ[b as usize] {
                    if members[s as usize] {
                        continue;
                    }
                    exits += 1;
                    match blk.transition {
                        Transition::Branch { rs, rt, .. } => {
                            let invariant = (rs == 0 || written & (1 << rs) == 0)
                                && (rt == 0 || written & (1 << rt) == 0);
                            if !invariant {
                                variant_exit = true;
                            }
                        }
                        // Dispatch exits depend on the stream or a register;
                        // stream-driven dispatch varies between iterations.
                        _ => variant_exit = true,
                    }
                }
            }
            let max_iter_cycles: u64 =
                scc.iter().map(|&b| self.p.blocks[b as usize].cycles()).sum();
            self.report.loops.push(LoopSummary { blocks: scc.clone(), max_iter_cycles, exits });
            if exits == 0 {
                self.report.push(
                    Severity::Error,
                    Analysis::Termination,
                    anchor,
                    None,
                    format!(
                        "Diverges: loop over blocks {scc:?} has no exit edge — once \
                         entered it can only end by exhausting the {}-cycle budget",
                        self.cfg.cycle_limit
                    ),
                );
            } else if !variant_exit {
                self.report.push(
                    Severity::Warn,
                    Analysis::Termination,
                    anchor,
                    None,
                    format!(
                        "Diverges: every exit of loop {scc:?} tests registers the loop \
                         never writes — the exit condition cannot change between \
                         iterations"
                    ),
                );
            }
            if consumes_stream && !checks_inrem {
                self.report.push(
                    Severity::Warn,
                    Analysis::StreamBounds,
                    anchor,
                    None,
                    format!(
                        "loop {scc:?} consumes input-stream bits but never re-checks \
                         `inrem` — a truncated input under-runs the stream unit"
                    ),
                );
            }
        }
        if sccs.is_empty() {
            // Acyclic: longest path is a hard bound.
            let bound = self.acyclic_cycle_bound();
            self.report.max_acyclic_cycles = Some(bound);
            if bound > self.cfg.cycle_limit {
                self.report.push(
                    Severity::Warn,
                    Analysis::Termination,
                    self.p.entry,
                    None,
                    format!(
                        "worst-case path costs {bound} cycles, exceeding the \
                         {}-cycle budget",
                        self.cfg.cycle_limit
                    ),
                );
            }
        }
    }

    /// Longest-path cycle cost over the (acyclic, reachable) CFG.
    fn acyclic_cycle_bound(&self) -> u64 {
        let n = self.p.blocks.len();
        // Topological order via DFS post-order (graph is acyclic here).
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 in-progress, 2 done
        let mut stack: Vec<(usize, usize)> = vec![(self.p.entry as usize, 0)];
        state[self.p.entry as usize] = 1;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < self.g.succ[v].len() {
                let w = self.g.succ[v][*i] as usize;
                *i += 1;
                if state[w] == 0 {
                    state[w] = 1;
                    stack.push((w, 0));
                }
            } else {
                state[v] = 2;
                order.push(v);
                stack.pop();
            }
        }
        order.reverse(); // topological order from entry
        let mut dist = vec![0u64; n];
        dist[self.p.entry as usize] = self.p.blocks[self.p.entry as usize].cycles();
        let mut best = dist[self.p.entry as usize];
        for &v in &order {
            let d = dist[v];
            if d == 0 && v != self.p.entry as usize {
                continue;
            }
            for &s in &self.g.succ[v] {
                let s = s as usize;
                let nd = d + self.p.blocks[s].cycles();
                if nd > dist[s] {
                    dist[s] = nd;
                    best = best.max(nd);
                }
            }
        }
        best
    }

    // -- analysis 6: cycle-bound certification -----------------------------

    /// Attaches a certified [`CycleBound`] envelope and budget warnings.
    ///
    /// Soundness sketch (details in DESIGN.md §10): the minimum is the
    /// shortest CFG path from the entry to a reachable halt — every run is
    /// a CFG path, so no completing run can cost less. For the maximum,
    /// execution decomposes into *progress events* (executions of blocks
    /// that each consume ≥1 stream bit, or advance-and-dereference a
    /// monotone scratchpad cursor) separated by paths through non-progress
    /// blocks; when the non-progress subgraph is acyclic its longest path
    /// bounds each separator, stream events are bounded by the input
    /// length, and cursor events by the dereference window — giving an
    /// affine `fixed + per_input_bit × bits` worst case.
    fn certify_cycle_bound(&mut self) {
        let Some(min) = self.min_cycles_to_halt() else {
            // No reachable halt: reachability already reported the Error
            // and there is no completing run to put an envelope around.
            return;
        };
        let max = self.certify_max_bound();
        self.report.cycle_bound = Some(CycleBound { min, max });
        if let Some(m) = max {
            if m.max_for(self.cfg.max_input_bits) > self.cfg.cycle_limit {
                self.report.push(
                    Severity::Warn,
                    Analysis::CycleBound,
                    self.p.entry,
                    None,
                    format!(
                        "certified worst case ({m}) reaches {} cycles at {} input bits, \
                         exceeding the {}-cycle budget",
                        m.max_for(self.cfg.max_input_bits),
                        self.cfg.max_input_bits,
                        self.cfg.cycle_limit
                    ),
                );
            }
            if m.per_input_bit > self.cfg.per_bit_budget {
                self.report.push(
                    Severity::Warn,
                    Analysis::CycleBound,
                    self.p.entry,
                    None,
                    format!(
                        "certified per-bit cost is {} cycles/bit, over the \
                         {}-cycle/bit budget",
                        m.per_input_bit, self.cfg.per_bit_budget
                    ),
                );
            }
        }
    }

    /// Shortest-path cycle cost from the entry to any reachable halt
    /// (block costs charged in full, entry and halt included); `None` when
    /// no halt is reachable.
    fn min_cycles_to_halt(&self) -> Option<u64> {
        let n = self.p.blocks.len();
        let entry = self.p.entry as usize;
        let mut dist = vec![u64::MAX; n];
        dist[entry] = self.p.blocks[entry].cycles();
        // Dijkstra with a linear scan: lane programs are small and every
        // edge cost is positive.
        let mut settled = vec![false; n];
        loop {
            let mut v = usize::MAX;
            let mut best = u64::MAX;
            for (i, &d) in dist.iter().enumerate() {
                if !settled[i] && d < best {
                    best = d;
                    v = i;
                }
            }
            if v == usize::MAX {
                break;
            }
            settled[v] = true;
            for &s in &self.g.succ[v] {
                let s = s as usize;
                let nd = dist[v].saturating_add(self.p.blocks[s].cycles());
                if nd < dist[s] {
                    dist[s] = nd;
                }
            }
        }
        self.p
            .blocks
            .iter()
            .enumerate()
            .filter(|&(i, b)| self.g.reachable[i] && matches!(b.transition, Transition::Halt))
            .map(|(i, _)| dist[i])
            .filter(|&d| d != u64::MAX)
            .min()
    }

    /// The certified affine maximum, or `None` (plus a warning) when some
    /// loop cannot be shown to make progress.
    fn certify_max_bound(&mut self) -> Option<MaxBound> {
        let n = self.p.blocks.len();
        // A *stream-progress* block consumes ≥1 stream bit on every
        // execution, so an input of B bits executes such blocks ≤ B times
        // in total (the stream unit traps on under-run; completing runs
        // never replay a bit).
        let mut stream_progress = vec![false; n];
        for (i, blk) in self.p.blocks.iter().enumerate() {
            stream_progress[i] = self.g.reachable[i]
                && (blk.actions.iter().any(|a| action_always_consumes_stream(*a))
                    || matches!(blk.transition, Transition::DispatchSym { .. }));
        }
        // Blocks on some CFG cycle; a reachable block on no cycle executes
        // at most once per run.
        let mut cyclic = vec![false; n];
        for scc in cyclic_sccs(&self.g) {
            for b in scc {
                cyclic[b as usize] = true;
            }
        }
        // A register is a *valid cursor* when every write to it inside a
        // cyclic block strictly advances it; writes in acyclic blocks are
        // resets (each runs ≤ once, so they bound the phase count).
        let advancing = |a: &Action, c: u8| -> bool {
            match *a {
                Action::AddI { rd, rs, imm } => rd == c && rs == c && imm > 0,
                // `loadinc rd, base` with rd == base ends holding the
                // loaded value, not the bumped cursor, so it only advances
                // when the destination is a different register.
                Action::LoadInc { rd, base, .. } => base == c && rd != c,
                Action::StoreInc { base, .. } => base == c,
                _ => false,
            }
        };
        let mut cursor_valid = [false; NUM_REGS];
        let mut cursor_resets = [0u64; NUM_REGS];
        for c in 1..NUM_REGS as u8 {
            let mut valid = true;
            let mut resets = 0u64;
            for (i, blk) in self.p.blocks.iter().enumerate() {
                if !self.g.reachable[i] {
                    continue;
                }
                for a in &blk.actions {
                    if !action_writes(*a).contains(&c) {
                        continue;
                    }
                    if cyclic[i] {
                        if !advancing(a, c) {
                            valid = false;
                        }
                    } else {
                        resets += 1;
                    }
                }
            }
            cursor_valid[c as usize] = valid;
            cursor_resets[c as usize] = resets;
        }
        // A *cursor-progress* block advances a valid cursor it also
        // dereferences (offsets are ISA-bounded to ±1023), so in a
        // completing run every execution lands an in-bounds access and the
        // cursor's monotonicity caps executions per phase by the
        // dereference window. Blocks already counted as stream progress
        // are skipped so each event is charged against exactly one budget.
        let accesses = |a: &Action, c: u8| -> bool {
            match *a {
                Action::Load { base, .. }
                | Action::Store { base, .. }
                | Action::LoadInc { base, .. }
                | Action::StoreInc { base, .. } => base == c,
                _ => false,
            }
        };
        let mut cursor_progress = vec![false; n];
        let mut cursor_used = [false; NUM_REGS];
        for (i, blk) in self.p.blocks.iter().enumerate() {
            if !self.g.reachable[i] || stream_progress[i] {
                continue;
            }
            for c in 1..NUM_REGS as u8 {
                if cursor_valid[c as usize]
                    && blk.actions.iter().any(|a| advancing(a, c))
                    && blk.actions.iter().any(|a| accesses(a, c))
                {
                    cursor_progress[i] = true;
                    cursor_used[c as usize] = true;
                }
            }
        }
        // The non-progress subgraph must be acyclic, else some loop's trip
        // count is unbounded by anything this analysis can see.
        let np = |i: usize| self.g.reachable[i] && !stream_progress[i] && !cursor_progress[i];
        let sub = Cfg {
            succ: (0..n)
                .map(|i| {
                    if np(i) {
                        self.g.succ[i].iter().copied().filter(|&s| np(s as usize)).collect()
                    } else {
                        Vec::new()
                    }
                })
                .collect(),
            reachable: (0..n).map(np).collect(),
        };
        if let Some(scc) = cyclic_sccs(&sub).first() {
            self.report.push(
                Severity::Warn,
                Analysis::CycleBound,
                scc[0],
                None,
                format!(
                    "cannot certify a worst-case cycle bound: loop over blocks {scc:?} \
                     neither consumes stream bits nor provably advances a scratchpad \
                     cursor, so its trip count is unbounded"
                ),
            );
            return None;
        }
        // Execution = progress events separated by acyclic non-progress
        // paths, each path ≤ the subgraph's longest-path cost `lp`.
        let lp = Self::longest_path(&sub, &self.p.blocks);
        let cmax = (0..n)
            .filter(|&i| stream_progress[i] || cursor_progress[i])
            .map(|i| self.p.blocks[i].cycles())
            .max()
            .unwrap_or(0);
        let has_stream = stream_progress.iter().any(|&s| s);
        let per_input_bit = if has_stream { lp + cmax } else { 0 };
        // Cursor-progress events per run: (resets + 1) monotone phases,
        // each capped by the dereference window (scratchpad + ±1023
        // offsets, with 2× slack); see DESIGN.md §10 for the u64
        // wraparound argument.
        let cursor_events: u64 = (1..NUM_REGS)
            .filter(|&c| cursor_used[c])
            .map(|c| (cursor_resets[c] + 1).saturating_mul(4 * SCRATCHPAD_BYTES as u64))
            .fold(0u64, u64::saturating_add);
        let fixed = lp.saturating_add(cursor_events.saturating_mul(lp + cmax));
        Some(MaxBound { fixed, per_input_bit })
    }

    /// Longest-path cycle cost over an acyclic sub-CFG, maximized over
    /// every member start node (`cfg.reachable` marks membership).
    fn longest_path(cfg: &Cfg, blocks: &[Block]) -> u64 {
        let n = cfg.succ.len();
        let mut order: Vec<usize> = Vec::new();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 in-progress, 2 done
        for root in 0..n {
            if !cfg.reachable[root] || state[root] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            state[root] = 1;
            while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                if *i < cfg.succ[v].len() {
                    let w = cfg.succ[v][*i] as usize;
                    *i += 1;
                    if state[w] == 0 {
                        state[w] = 1;
                        stack.push((w, 0));
                    }
                } else {
                    state[v] = 2;
                    order.push(v);
                    stack.pop();
                }
            }
        }
        // Post-order puts successors first: one forward sweep computes
        // "longest path starting at v".
        let mut dist = vec![0u64; n];
        let mut best = 0u64;
        for &v in &order {
            let tail = cfg.succ[v].iter().map(|&s| dist[s as usize]).max().unwrap_or(0);
            dist[v] = blocks[v].cycles() + tail;
            best = best.max(dist[v]);
        }
        best
    }

    // -- analysis 7: predecode translation validation ----------------------

    /// Proves the image's flat predecode table equivalent to word-at-a-time
    /// decoding for *every* code address. `encode` builds the table from
    /// the same words, so a divergence means either the table went stale
    /// (words patched after assembly) or the two decoders disagree — in
    /// both cases the flat table no longer denotes the program and must
    /// not be trusted by the lane hot path (or a future JIT backend).
    fn check_translation_validation(&mut self, placement: &Placement, image: &Image) {
        // Anchor findings to the block placed at the offending address;
        // holes and table padding anchor to the entry.
        let mut owner = vec![self.p.entry; image.words.len()];
        for (i, &addr) in placement.block_addr.iter().enumerate() {
            if let Some(slot) = owner.get_mut(addr as usize) {
                *slot = i as BlockId;
            }
        }
        for addr in 0..image.words.len() as u32 {
            let slow = image.decode(addr);
            let flat = image.predecoded(addr);
            let why = match (&slow, flat) {
                (None, None) => None,
                (Some(_), None) => {
                    Some("the word decodes to a block but the flat table holds a hole".to_string())
                }
                (None, Some(_)) => Some(
                    "the word is a hole (or undecodable) but the flat table holds a block"
                        .to_string(),
                ),
                (Some(d), Some(p)) => {
                    if p.actions() != d.actions.as_slice() {
                        Some(format!(
                            "action slots diverge ({} flat vs {} decoded)",
                            p.actions().len(),
                            d.actions.len()
                        ))
                    } else if p.transition != d.transition {
                        Some("the transition diverges".to_string())
                    } else {
                        None
                    }
                }
            };
            if let Some(why) = why {
                self.report.push(
                    Severity::Error,
                    Analysis::TranslationValidation,
                    owner[addr as usize],
                    None,
                    format!(
                        "predecode table is not equivalent to decode_word at address \
                         {addr}: {why}"
                    ),
                );
            }
        }
        // The JIT artifact is a further translation of the same table; audit
        // its digest pins so a tampered code buffer or an artifact compiled
        // from different words is an `Error` that gates `Lane::run` exactly
        // like a stale predecode table.
        if let Some(jit) = image.jit() {
            for why in jit.integrity_errors(&image.words) {
                self.report.push(
                    Severity::Error,
                    Analysis::TranslationValidation,
                    self.p.entry,
                    None,
                    why,
                );
            }
        }
    }

    // -- analysis 5: dispatch tables ---------------------------------------

    fn check_dispatch_tables(&mut self, img: Option<(&Placement, &Image)>) {
        for (i, blk) in self.p.blocks.iter().enumerate() {
            if !self.g.reachable[i] {
                continue;
            }
            let (group, domain, label): (u32, Option<(i128, i128)>, &str) = match blk.transition {
                Transition::DispatchSym { bits, group } => {
                    (group, Some((0, (1i128 << bits) - 1)), "dispatch.sym")
                }
                Transition::DispatchPeek { bits, group } => {
                    (group, Some((0, (1i128 << bits) - 1)), "dispatch.peek")
                }
                Transition::DispatchReg { rs, group } => {
                    // Use the interval fixpoint for the index register at
                    // the dispatch point.
                    let mut regs = self.entry_state[i];
                    for a in &blk.actions {
                        interval_step(&mut regs, *a);
                    }
                    let iv = if rs == 0 { Iv::exact(0) } else { regs[rs as usize] };
                    let dom = if iv.lo >= 0 && iv.hi - iv.lo < 65536 && iv.hi < 1 << 20 {
                        Some((iv.lo, iv.hi))
                    } else {
                        None
                    };
                    (group, dom, "dispatch.reg")
                }
                _ => continue,
            };
            // Out-of-range group ids are rejected by Program::validate.
            let Some(entries) = self.p.groups.get(group as usize) else { continue };
            if entries.is_empty() {
                self.report.push(
                    Severity::Error,
                    Analysis::DispatchTable,
                    i as BlockId,
                    None,
                    format!(
                        "{label} targets group {group}, which has no entries — \
                             every dispatch traps"
                    ),
                );
                continue;
            }
            let Some((lo, hi)) = domain else {
                self.report.push(
                    Severity::Info,
                    Analysis::DispatchTable,
                    i as BlockId,
                    None,
                    format!(
                        "{label} index range cannot be bounded statically; \
                         table completeness not checked"
                    ),
                );
                continue;
            };
            let covered: std::collections::HashSet<u32> = entries.iter().map(|&(o, _)| o).collect();
            // Offsets no in-range symbol can ever select.
            for &(o, _) in entries {
                if (o as i128) < lo || (o as i128) > hi {
                    self.report.push(
                        Severity::Warn,
                        Analysis::DispatchTable,
                        i as BlockId,
                        None,
                        format!(
                            "group {group} slot at offset {o} is outside this {label}'s \
                             index range [{lo}, {hi}] and can never be selected from \
                             here"
                        ),
                    );
                }
            }
            // Symbols with no entry: they trap (hole) or alias (image check).
            let mut missing: Vec<i128> = Vec::new();
            for sym in lo..=hi {
                if !covered.contains(&(sym as u32)) {
                    missing.push(sym);
                }
            }
            if !missing.is_empty() {
                let total = hi - lo + 1;
                let shown: Vec<String> =
                    missing.iter().take(8).map(std::string::ToString::to_string).collect();
                let ell = if missing.len() > 8 { ", …" } else { "" };
                self.report.push(
                    Severity::Warn,
                    Analysis::DispatchTable,
                    i as BlockId,
                    None,
                    format!(
                        "{label} covers {} of {total} possible symbols; missing \
                         symbols [{}{ell}] trap (or alias) at runtime",
                        total - missing.len() as i128,
                        shown.join(", "),
                    ),
                );
                // Image-level: a missing symbol that lands on a *non-hole*
                // word silently executes foreign code instead of trapping.
                if let Some((placement, image)) = img {
                    let base = placement.group_base[group as usize];
                    let mut aliased: Vec<i128> = Vec::new();
                    for &sym in &missing {
                        let addr = (base as i128 + sym) as u32;
                        if image.decode(addr).is_some() {
                            aliased.push(sym);
                        }
                    }
                    if !aliased.is_empty() {
                        let shown: Vec<String> =
                            aliased.iter().take(8).map(std::string::ToString::to_string).collect();
                        let ell = if aliased.len() > 8 { ", …" } else { "" };
                        self.report.push(
                            Severity::Warn,
                            Analysis::DispatchTable,
                            i as BlockId,
                            None,
                            format!(
                                "uncovered symbols [{}{ell}] alias into foreign code \
                                 words at base {base} — they execute unrelated blocks \
                                 instead of trapping",
                                shown.join(", "),
                            ),
                        );
                    }
                }
            }
        }
    }

    // -- image cross-check --------------------------------------------------

    fn cross_check_image(&mut self, placement: &Placement, image: &Image) {
        if image.decode(image.entry).is_none() {
            self.report.push(
                Severity::Error,
                Analysis::DispatchTable,
                self.p.entry,
                None,
                format!("image entry address {} decodes to a hole", image.entry),
            );
        }
        for (i, blk) in self.p.blocks.iter().enumerate() {
            if !self.g.reachable[i] {
                continue;
            }
            let addr = placement.block_addr[i];
            match image.decode(addr) {
                None => {
                    self.report.push(
                        Severity::Error,
                        Analysis::DispatchTable,
                        i as BlockId,
                        None,
                        format!("reachable block encodes to a hole at address {addr}"),
                    );
                }
                Some(dec) => {
                    if dec.actions != blk.actions {
                        self.report.push(
                            Severity::Error,
                            Analysis::DispatchTable,
                            i as BlockId,
                            None,
                            format!(
                                "encode/decode round-trip mismatch at address {addr}: \
                                 {} action(s) decoded, {} expected",
                                dec.actions.len(),
                                blk.actions.len()
                            ),
                        );
                    }
                    let tag_ok = matches!(
                        (&blk.transition, &dec.transition),
                        (Transition::Halt, DecodedTransition::Halt)
                            | (Transition::Jump(_), DecodedTransition::Jump(_))
                            | (
                                Transition::DispatchSym { .. },
                                DecodedTransition::DispatchSym { .. }
                            )
                            | (
                                Transition::DispatchPeek { .. },
                                DecodedTransition::DispatchPeek { .. }
                            )
                            | (
                                Transition::DispatchReg { .. },
                                DecodedTransition::DispatchReg { .. }
                            )
                            | (Transition::Branch { .. }, DecodedTransition::Branch { .. })
                    );
                    if !tag_ok {
                        self.report.push(
                            Severity::Error,
                            Analysis::DispatchTable,
                            i as BlockId,
                            None,
                            format!(
                                "encode/decode round-trip mismatch at address {addr}: \
                                 transition kind differs"
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble_text_with_map;
    use crate::machine::assemble;

    fn report_for(src: &str) -> VerifyReport {
        let (program, map) = assemble_text_with_map("t", src).unwrap();
        let image = assemble(&program).unwrap();
        let mut r = image.verify_report.clone();
        r.attach_lines(&map);
        r
    }

    #[test]
    fn trivial_program_is_clean() {
        let r = report_for(".entry m\nm:\n    limm r15, 0\n    halt\n");
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.max_acyclic_cycles, Some(2));
    }

    #[test]
    fn interval_ops_are_sound() {
        let a = Iv::range(0, 10);
        let b = Iv::range(-3, 4);
        assert_eq!(a.add(b), Iv::range(-3, 14));
        assert_eq!(a.sub(b), Iv::range(-4, 13));
        assert_eq!(a.and(Iv::TOP), Iv::range(0, 10));
        assert_eq!(a.shl(2), Iv::range(0, 40));
        assert_eq!(b.shr(1).lo, 0);
        assert_eq!(Iv::TOP.add(Iv::exact(1)), Iv::TOP);
        assert_eq!(a.join(b), Iv::range(-3, 10));
        assert_eq!(Iv::range(-5, 20).widen(a), Iv::range(IV_MIN, IV_MAX));
    }

    #[test]
    fn severity_orders_error_above_warn_above_info() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
    }

    #[test]
    fn findings_get_source_lines() {
        // Line 4 reads r5 which nothing writes.
        let src =
            ".entry m\nm:\n    mov r2, r14\n    storeb r5, r2, 0\n    limm r15, 1\n    halt\n";
        let r = report_for(src);
        let f = r
            .findings
            .iter()
            .find(|f| f.analysis == Analysis::RegisterInit)
            .expect("expected a register-init finding");
        assert_eq!(f.severity, Severity::Warn);
        assert_eq!(f.line, Some(4), "{f}");
    }

    #[test]
    fn report_renders_with_counts() {
        let r = report_for(".entry m\nm:\n    limm r15, 0\n    halt\n");
        let text = r.to_string();
        assert!(text.contains("0 error(s)"), "{text}");
        assert!(text.contains("blocks reachable"), "{text}");
    }

    #[test]
    fn trivial_program_gets_tight_cycle_bound() {
        let r = report_for(".entry m\nm:\n    limm r15, 0\n    halt\n");
        let b = r.cycle_bound.expect("acyclic program must certify");
        assert_eq!(b.min, 2);
        assert_eq!(b.max, Some(MaxBound { fixed: 2, per_input_bit: 0 }));
        assert!(b.contains(2, 0));
        assert!(!b.contains(1, 0));
        assert!(!b.contains(3, 1 << 20));
    }

    #[test]
    fn stream_loop_certifies_affine_bound() {
        // One byte in, one byte out per iteration: the loop body is
        // stream-progress, so max is affine in the input bits.
        let src = "\
.entry init
init:
    mov r2, r14
    inrem r3
    beq r3, r0, done
body:
    insymle r1, 1
    storebi r1, r2
    inrem r3
    beq r3, r0, done
back:
    jump body
done:
    sub r15, r2, r14
    halt
";
        let r = report_for(src);
        assert!(r.is_clean(), "{r}");
        let b = r.cycle_bound.expect("must certify");
        let m = b.max.expect("stream loop is boundable");
        assert!(m.per_input_bit > 0, "{m}");
        // 8 bits consumed per iteration of a ≤(fixed + per_bit·8)-cycle
        // body: a real n-byte run must fit.
        assert!(b.contains(b.min, 0));
    }

    #[test]
    fn program_without_reachable_halt_has_no_bound() {
        let (program, _) = assemble_text_with_map("g", ".entry m\nm:\n    jump m\n").unwrap();
        let r = verify_program(&program, &VerifyConfig::default());
        assert_eq!(r.cycle_bound, None);
    }

    #[test]
    fn progressless_loop_cannot_certify_a_max() {
        // The loop spins on a register the stream never feeds: no stream
        // consumption, no cursor dereference — unboundable trip count.
        let src = "\
.entry init
init:
    limm r1, 100
loop:
    addi r1, r1, -1
    bne r1, r0, loop
done:
    limm r15, 0
    halt
";
        let r = report_for(src);
        let b = r.cycle_bound.expect("min is still certifiable");
        assert_eq!(b.max, None);
        let f = r
            .findings
            .iter()
            .find(|f| f.analysis == Analysis::CycleBound)
            .expect("expected a cycle-bound warning");
        assert_eq!(f.severity, Severity::Warn);
        assert!(f.message.contains("cannot certify"), "{f}");
    }

    #[test]
    fn tampered_words_fail_translation_validation() {
        use crate::effclip;
        let (program, _) =
            assemble_text_with_map("t", ".entry m\nm:\n    limm r15, 0\n    halt\n").unwrap();
        let mut image = assemble(&program).unwrap();
        assert!(image.verify_report.error_count() == 0);
        // Patch the entry word after assembly: the flat predecode table is
        // now stale relative to decode_word.
        image.words[image.entry as usize] ^= 1 << 40;
        let placement = effclip::place(&program).unwrap();
        let r = verify_image(&program, &placement, &image, &VerifyConfig::default());
        let f = r
            .findings
            .iter()
            .find(|f| f.analysis == Analysis::TranslationValidation)
            .expect("expected a translation-validation finding:\n{r}");
        assert_eq!(f.severity, Severity::Error);
        assert!(f.message.contains("not equivalent"), "{f}");
    }

    #[test]
    fn gate_rejects_error_findings() {
        let (program, _) = assemble_text_with_map("g", ".entry m\nm:\n    jump m\n").unwrap();
        let r = verify_program(&program, &VerifyConfig::default());
        assert!(r.error_count() > 0);
        let err = r.gate().unwrap_err();
        match err {
            UdpError::Verify { errors, .. } => assert_eq!(errors, r.error_count()),
            other => panic!("expected Verify error, got {other}"),
        }
    }
}
