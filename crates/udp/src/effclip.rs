//! EffCLiP — Efficient Coupled Linear Packing.
//!
//! Multi-way dispatch computes the next code address as `base + symbol`, so
//! every member of a dispatch group must sit at a fixed offset from a common
//! base, and every branch's fall-through must sit at `branch + 1`. EffCLiP
//! (Fang, Lehane, Chien — UChicago TR-2015-05) resolves these *coupled*
//! placement constraints into one dense linear code memory, so the dispatch
//! "hash" stays a plain integer addition and memory utilization stays high.
//!
//! This implementation mirrors the published algorithm's shape:
//!
//! 1. Build placement units — dispatch groups (sparse offset patterns) and
//!    fall-through chains (contiguous runs).
//! 2. Place units by first-fit linear probing, largest/most-constrained
//!    first, into a free bitmap.
//! 3. Fill the remaining holes with unconstrained singleton blocks.
//!
//! The result reports memory utilization, which the ablation benches track
//! (the paper's "dense memory utilization" claim).

use crate::error::UdpError;
use crate::isa::{BlockId, Transition};
use crate::program::Program;
use serde::{Deserialize, Serialize};

/// Placement result: concrete code addresses for every block and group base.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Placement {
    /// Code address per block.
    pub block_addr: Vec<u32>,
    /// Base address per dispatch group.
    pub group_base: Vec<u32>,
    /// Size of the code memory (highest used address + 1).
    pub code_len: usize,
    /// Blocks placed / code_len — the packing density EffCLiP maximizes.
    pub utilization: f64,
}

/// Places `program` into linear code memory.
///
/// # Errors
/// [`UdpError::Program`] if the program violates the placement rules
/// ([`Program::validate`] catches these earlier; this is a defensive check).
pub fn place(program: &Program) -> Result<Placement, UdpError> {
    program.validate()?;
    let n = program.blocks.len();
    let mut addr: Vec<Option<u32>> = vec![None; n];
    // Free map grows on demand; `true` = occupied.
    let mut used: Vec<bool> = Vec::new();

    // ---- 1. Build chains (fall-through runs). ----
    // chain_next[b] = fall-through successor of b, if b branches.
    let mut is_fall_target = vec![false; n];
    for b in &program.blocks {
        if let Transition::Branch { fallthrough, .. } = b.transition {
            is_fall_target[fallthrough as usize] = true;
        }
    }
    // A chain starts at a branching block that is not itself a fall target,
    // or at a fall target chain continuation — we enumerate maximal chains.
    let mut in_chain = vec![false; n];
    let mut chains: Vec<Vec<BlockId>> = Vec::new();
    for (start, fall_target) in is_fall_target.iter().enumerate() {
        let starts_chain =
            matches!(program.blocks[start].transition, Transition::Branch { .. }) && !fall_target;
        if !starts_chain {
            continue;
        }
        let mut chain = vec![start as BlockId];
        let mut cur = start;
        while let Transition::Branch { fallthrough, .. } = program.blocks[cur].transition {
            chain.push(fallthrough);
            cur = fallthrough as usize;
        }
        for &b in &chain {
            in_chain[b as usize] = true;
        }
        chains.push(chain);
    }

    // ---- 2. Place groups, most-constrained (largest span) first. ----
    let mut group_order: Vec<usize> = (0..program.groups.len()).collect();
    group_order.sort_by_key(|&g| {
        let entries = &program.groups[g];
        let span = entries.iter().map(|&(o, _)| o).max().unwrap_or(0);
        std::cmp::Reverse((entries.len() as u64) << 32 | span as u64)
    });
    let mut group_base = vec![0u32; program.groups.len()];
    for g in group_order {
        let entries = &program.groups[g];
        if entries.is_empty() {
            group_base[g] = 0;
            continue;
        }
        let mut base = 0u32;
        'probe: loop {
            for &(off, _) in entries {
                let a = base as usize + off as usize;
                if *used_at(&mut used, a) {
                    base += 1;
                    continue 'probe;
                }
            }
            break;
        }
        group_base[g] = base;
        for &(off, bid) in entries {
            let a = base + off;
            *used_at(&mut used, a as usize) = true;
            addr[bid as usize] = Some(a);
        }
    }

    // ---- 3. Place chains (need contiguous runs), longest first. ----
    chains.sort_by_key(|c| std::cmp::Reverse(c.len()));
    for chain in &chains {
        let len = chain.len();
        let mut base = 0usize;
        'probe2: loop {
            for k in 0..len {
                if *used_at(&mut used, base + k) {
                    base += k + 1;
                    continue 'probe2;
                }
            }
            break;
        }
        for (k, &bid) in chain.iter().enumerate() {
            let a = (base + k) as u32;
            *used_at(&mut used, a as usize) = true;
            addr[bid as usize] = Some(a);
        }
    }

    // ---- 4. Singletons fill holes first-fit. ----
    let mut cursor = 0usize;
    for (bid, slot) in addr.iter_mut().enumerate() {
        if slot.is_some() {
            continue;
        }
        debug_assert!(!in_chain[bid]);
        while *used_at(&mut used, cursor) {
            cursor += 1;
        }
        used[cursor] = true;
        *slot = Some(cursor as u32);
    }

    let block_addr: Vec<u32> = addr.into_iter().map(|a| a.expect("all blocks placed")).collect();
    let code_len = used.iter().rposition(|&u| u).map_or(0, |p| p + 1);
    let utilization = if code_len == 0 { 1.0 } else { n as f64 / code_len as f64 };
    Ok(Placement { block_addr, group_base, code_len, utilization })
}

/// Grows the bitmap on demand and returns a mutable slot.
fn used_at(used: &mut Vec<bool>, idx: usize) -> &mut bool {
    if idx >= used.len() {
        used.resize(idx + 1, false);
    }
    &mut used[idx]
}

/// Verifies that a placement satisfies every coupling constraint — used by
/// tests and by the machine encoder as a pre-encoding assertion.
///
/// # Errors
/// [`UdpError::Placement`] naming the first violated constraint.
pub fn verify(program: &Program, p: &Placement) -> Result<(), UdpError> {
    verify_str(program, p).map_err(UdpError::Placement)
}

fn verify_str(program: &Program, p: &Placement) -> Result<(), String> {
    let n = program.blocks.len();
    if p.block_addr.len() != n {
        return Err("placement size mismatch".into());
    }
    // Uniqueness.
    let mut seen = std::collections::HashMap::new();
    for (b, &a) in p.block_addr.iter().enumerate() {
        if let Some(prev) = seen.insert(a, b) {
            return Err(format!("blocks {prev} and {b} share address {a}"));
        }
    }
    // Group coupling.
    for (g, entries) in program.groups.iter().enumerate() {
        for &(off, bid) in entries {
            let want = p.group_base[g] + off;
            if p.block_addr[bid as usize] != want {
                return Err(format!(
                    "group {g} member {bid}: at {} but base+offset = {want}",
                    p.block_addr[bid as usize]
                ));
            }
        }
    }
    // Fall-through coupling.
    for (b, blk) in program.blocks.iter().enumerate() {
        if let Transition::Branch { fallthrough, .. } = blk.transition {
            if p.block_addr[fallthrough as usize] != p.block_addr[b] + 1 {
                return Err(format!(
                    "branch {b} at {} but fall-through {fallthrough} at {}",
                    p.block_addr[b], p.block_addr[fallthrough as usize]
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Action, Block, Cond, Transition};
    use crate::program::ProgramBuilder;

    fn halt() -> Block {
        Block { actions: vec![], transition: Transition::Halt }
    }

    #[test]
    fn dense_group_places_contiguously_with_full_utilization() {
        let mut pb = ProgramBuilder::new("dense");
        let members: Vec<_> = (0..16).map(|_| pb.block(halt())).collect();
        let g = pb.group(members.iter().enumerate().map(|(i, &b)| (i as u32, b)).collect());
        let start = pb.block(Block {
            actions: vec![Action::InSym { rd: 1, bits: 4 }],
            transition: Transition::DispatchSym { bits: 4, group: g },
        });
        pb.entry(start);
        let p = pb.build().unwrap();
        let placement = place(&p).unwrap();
        verify(&p, &placement).unwrap();
        assert_eq!(placement.code_len, 17);
        assert!((placement.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_groups_interleave() {
        // Two groups with complementary offset patterns can share space.
        let mut pb = ProgramBuilder::new("interleave");
        let a: Vec<_> = (0..4).map(|_| pb.block(halt())).collect();
        let b: Vec<_> = (0..4).map(|_| pb.block(halt())).collect();
        // Group A occupies even offsets, group B also even offsets — placed
        // at odd base they interleave perfectly.
        let ga = pb.group(a.iter().enumerate().map(|(i, &x)| (2 * i as u32, x)).collect());
        let gb = pb.group(b.iter().enumerate().map(|(i, &x)| (2 * i as u32, x)).collect());
        let start = pb.block(Block {
            actions: vec![],
            transition: Transition::DispatchSym { bits: 3, group: ga },
        });
        let start2 = pb.block(Block {
            actions: vec![],
            transition: Transition::DispatchSym { bits: 3, group: gb },
        });
        // Keep start2 reachable for realism.
        let _ = start2;
        pb.entry(start);
        let p = pb.build().unwrap();
        let placement = place(&p).unwrap();
        verify(&p, &placement).unwrap();
        // 10 blocks; perfect interleave would be 10 slots; allow tiny slack.
        assert!(placement.utilization > 0.8, "utilization {}", placement.utilization);
    }

    #[test]
    fn chains_are_contiguous() {
        let mut pb = ProgramBuilder::new("chain");
        let done = pb.block(halt());
        let c = pb.reserve();
        let b = pb.reserve();
        let a = pb.reserve();
        pb.define(c, halt());
        pb.define(
            b,
            Block {
                actions: vec![],
                transition: Transition::Branch {
                    cond: Cond::Ne,
                    rs: 1,
                    rt: 0,
                    taken: done,
                    fallthrough: c,
                },
            },
        );
        pb.define(
            a,
            Block {
                actions: vec![],
                transition: Transition::Branch {
                    cond: Cond::Eq,
                    rs: 1,
                    rt: 0,
                    taken: done,
                    fallthrough: b,
                },
            },
        );
        pb.entry(a);
        let p = pb.build().unwrap();
        let placement = place(&p).unwrap();
        verify(&p, &placement).unwrap();
        let (aa, ab, ac) = (
            placement.block_addr[a as usize],
            placement.block_addr[b as usize],
            placement.block_addr[c as usize],
        );
        assert_eq!(ab, aa + 1);
        assert_eq!(ac, ab + 1);
    }

    #[test]
    fn verify_catches_violations() {
        let mut pb = ProgramBuilder::new("v");
        let m = pb.block(halt());
        let g = pb.group(vec![(3, m)]);
        let start = pb.block(Block {
            actions: vec![],
            transition: Transition::DispatchSym { bits: 2, group: g },
        });
        pb.entry(start);
        let p = pb.build().unwrap();
        let mut placement = place(&p).unwrap();
        verify(&p, &placement).unwrap();
        placement.block_addr[m as usize] += 1;
        assert!(verify(&p, &placement).is_err());
    }

    #[test]
    fn empty_group_is_fine() {
        let mut pb = ProgramBuilder::new("empty-group");
        let g = pb.group(vec![]);
        let start = pb.block(Block {
            actions: vec![],
            transition: Transition::DispatchSym { bits: 1, group: g },
        });
        pb.entry(start);
        let p = pb.build().unwrap();
        let placement = place(&p).unwrap();
        verify(&p, &placement).unwrap();
    }

    #[test]
    fn big_random_ish_program_places_validly() {
        // 8 groups of 32 sparse offsets + 50 chains + 100 singletons.
        let mut pb = ProgramBuilder::new("big");
        let mut group_ids = Vec::new();
        for g in 0..8u32 {
            let members: Vec<_> = (0..32u32).map(|i| (i * (g % 3 + 1), pb.block(halt()))).collect();
            group_ids.push(pb.group(members));
        }
        let done = pb.block(halt());
        for k in 0..50u32 {
            let tail = pb.block(halt());
            let _head = pb.block(Block {
                actions: vec![],
                transition: Transition::Branch {
                    cond: if k % 2 == 0 { Cond::Eq } else { Cond::Ltu },
                    rs: (k % 15 + 1) as u8,
                    rt: 0,
                    taken: done,
                    fallthrough: tail,
                },
            });
        }
        for _ in 0..100 {
            pb.block(halt());
        }
        let start = pb.block(Block {
            actions: vec![],
            transition: Transition::DispatchSym { bits: 8, group: group_ids[0] },
        });
        pb.entry(start);
        let p = pb.build().unwrap();
        let placement = place(&p).unwrap();
        verify(&p, &placement).unwrap();
        assert!(placement.utilization > 0.5, "utilization {}", placement.utilization);
    }
}
