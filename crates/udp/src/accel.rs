//! The 64-lane UDP accelerator: MIMD scheduling of independent block jobs
//! across lanes, with makespan, throughput, utilization and energy
//! accounting (paper Fig. 8: parallel lanes exploit the block-oriented
//! pattern of SpMV recoding).

use crate::energy;
use crate::lane::{Lane, LaneError};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// What one job produced on a lane.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Cycles the job consumed on its lane.
    pub cycles: u64,
    /// Bytes the job produced.
    pub output: Vec<u8>,
}

/// A batch result: aggregate report plus every job's output in job order.
pub type BatchResult = (AccelReport, Vec<Vec<u8>>);

/// A failed job: its index and the lane trap it hit.
pub type JobFailure = (usize, LaneError);

/// Accelerator configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Accelerator {
    /// Number of parallel lanes (paper: 64).
    pub lanes: usize,
    /// Clock frequency (paper at 14 nm: 1.6 GHz).
    pub freq_hz: f64,
}

impl Default for Accelerator {
    fn default() -> Self {
        Accelerator { lanes: energy::LANES, freq_hz: energy::FREQ_HZ }
    }
}

/// Aggregate result of running a batch of jobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccelReport {
    /// Jobs executed.
    pub jobs: usize,
    /// Lanes configured.
    pub lanes: usize,
    /// Longest per-lane cycle sum — wall-clock cycles for the batch.
    pub makespan_cycles: u64,
    /// Sum of cycles across all lanes (busy cycles).
    pub busy_cycles: u64,
    /// Total bytes produced.
    pub output_bytes: u64,
    /// `busy / (makespan * lanes)` — MIMD load balance.
    pub lane_utilization: f64,
    /// Clock frequency used for time/throughput conversions.
    pub freq_hz: f64,
}

impl AccelReport {
    /// Wall-clock seconds for the batch.
    pub fn seconds(&self) -> f64 {
        self.makespan_cycles as f64 / self.freq_hz
    }

    /// Decompressed-output throughput in bytes/second.
    pub fn throughput_bps(&self) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            return 0.0;
        }
        self.output_bytes as f64 / s
    }

    /// Accelerator energy for the batch (busy-time power model, 0.16 W per
    /// 64-lane UDP).
    pub fn energy_joules(&self) -> f64 {
        energy::POWER_W * (self.lanes as f64 / energy::LANES as f64) * self.seconds()
    }
}

impl Accelerator {
    /// Runs `jobs` across the lanes (round-robin assignment, each lane
    /// processes its jobs in order) and returns the report plus every job's
    /// output in job order.
    ///
    /// `run` is invoked once per job with a reusable [`Lane`]; it should
    /// execute however many program stages the job needs and return the
    /// total cycles and final output.
    ///
    /// # Errors
    /// The index and trap of the first failing job (corrupt inputs trap).
    pub fn run_jobs<J, F>(
        &self,
        jobs: &[J],
        run: F,
    ) -> Result<BatchResult, JobFailure>
    where
        J: Sync,
        F: Fn(&mut Lane, &J) -> Result<JobOutcome, LaneError> + Sync,
    {
        assert!(self.lanes > 0, "need at least one lane");
        // Each simulated lane runs on a host thread; job k goes to lane
        // k % lanes, preserving the paper's block-round-robin assignment.
        let per_lane: Vec<Result<Vec<(usize, JobOutcome)>, JobFailure>> = (0..self.lanes)
            .into_par_iter()
            .map(|lane_idx| {
                let mut lane = Lane::new();
                let mut done = Vec::new();
                for (k, job) in jobs.iter().enumerate().skip(lane_idx).step_by(self.lanes) {
                    match run(&mut lane, job) {
                        Ok(outcome) => done.push((k, outcome)),
                        Err(e) => return Err((k, e)),
                    }
                }
                Ok(done)
            })
            .collect();

        let mut outputs: Vec<Vec<u8>> = vec![Vec::new(); jobs.len()];
        let mut makespan = 0u64;
        let mut busy = 0u64;
        let mut out_bytes = 0u64;
        for lane_result in per_lane {
            let lane_jobs = lane_result?;
            let lane_cycles: u64 = lane_jobs.iter().map(|(_, o)| o.cycles).sum();
            makespan = makespan.max(lane_cycles);
            busy += lane_cycles;
            for (k, o) in lane_jobs {
                out_bytes += o.output.len() as u64;
                outputs[k] = o.output;
            }
        }
        let report = AccelReport {
            jobs: jobs.len(),
            lanes: self.lanes,
            makespan_cycles: makespan,
            busy_cycles: busy,
            output_bytes: out_bytes,
            lane_utilization: if makespan == 0 {
                1.0
            } else {
                busy as f64 / (makespan as f64 * self.lanes as f64)
            },
            freq_hz: self.freq_hz,
        };
        Ok((report, outputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::RunResult;

    /// Fake job: pretend each job costs `cycles` and emits `bytes` zeros.
    struct Fake {
        cycles: u64,
        bytes: usize,
    }

    fn run_fake(_lane: &mut Lane, j: &Fake) -> Result<JobOutcome, LaneError> {
        Ok(JobOutcome { cycles: j.cycles, output: vec![0u8; j.bytes] })
    }

    #[test]
    fn balanced_jobs_keep_lanes_busy() {
        let acc = Accelerator { lanes: 4, freq_hz: 1e9 };
        let jobs: Vec<Fake> = (0..16).map(|_| Fake { cycles: 100, bytes: 10 }).collect();
        let (r, outs) = acc.run_jobs(&jobs, run_fake).unwrap();
        assert_eq!(r.makespan_cycles, 400);
        assert_eq!(r.busy_cycles, 1600);
        assert!((r.lane_utilization - 1.0).abs() < 1e-12);
        assert_eq!(r.output_bytes, 160);
        assert_eq!(outs.len(), 16);
        // throughput = 160 B / (400 cycles / 1e9) = 400 MB/s
        assert!((r.throughput_bps() - 4e8).abs() < 1.0);
    }

    #[test]
    fn skewed_jobs_reduce_utilization() {
        let acc = Accelerator { lanes: 4, freq_hz: 1e9 };
        let mut jobs: Vec<Fake> = (0..4).map(|_| Fake { cycles: 10, bytes: 1 }).collect();
        jobs[0].cycles = 1000;
        let (r, _) = acc.run_jobs(&jobs, run_fake).unwrap();
        assert_eq!(r.makespan_cycles, 1000);
        assert!(r.lane_utilization < 0.3);
    }

    #[test]
    fn failing_job_reports_its_index() {
        let acc = Accelerator { lanes: 2, freq_hz: 1e9 };
        let jobs = vec![1u8, 2, 3];
        let err = acc
            .run_jobs(&jobs, |_lane, &j| {
                if j == 3 {
                    Err(LaneError::CycleLimit { limit: 1 })
                } else {
                    Ok(JobOutcome { cycles: 1, output: vec![] })
                }
            })
            .unwrap_err();
        assert_eq!(err.0, 2);
    }

    #[test]
    fn empty_batch_is_trivial() {
        let acc = Accelerator::default();
        let (r, outs) = acc.run_jobs::<Fake, _>(&[], run_fake).unwrap();
        assert_eq!(r.makespan_cycles, 0);
        assert!(outs.is_empty());
        assert_eq!(r.throughput_bps(), 0.0);
    }

    #[test]
    fn default_matches_paper_constants() {
        let acc = Accelerator::default();
        assert_eq!(acc.lanes, 64);
        assert!((acc.freq_hz - 1.6e9).abs() < 1.0);
    }

    // Silence the unused-import lint while documenting intent: RunResult is
    // the lane-level analogue of JobOutcome.
    #[allow(dead_code)]
    fn _type_bridge(r: RunResult) -> JobOutcome {
        JobOutcome { cycles: r.cycles, output: r.output }
    }
}
