//! The 64-lane UDP accelerator: MIMD scheduling of independent block jobs
//! across lanes, with makespan, throughput, utilization and energy
//! accounting (paper Fig. 8: parallel lanes exploit the block-oriented
//! pattern of SpMV recoding).
//!
//! A batch never aborts on the first lane trap: every job's outcome is
//! collected so callers can retry or re-fetch just the failed blocks. A
//! [`FaultHook`] lets tests inject transient lane traps and DMA stalls into
//! the batch deterministically.

use crate::energy;
use crate::lane::{Lane, LaneError};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// What one job produced on a lane.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Cycles the job consumed on its lane.
    pub cycles: u64,
    /// Bytes the job produced.
    pub output: Vec<u8>,
}

/// Result of a batch: aggregate report plus every job's individual outcome
/// in job order. Failed jobs are `Err` entries — the batch itself always
/// completes so callers can recover per job.
#[derive(Debug)]
pub struct BatchOutcome<E> {
    /// Aggregate cycle/throughput accounting (failed jobs contribute their
    /// stall cycles but no output bytes).
    pub report: AccelReport,
    /// Per-job outcome, indexed by job position in the submitted batch.
    pub results: Vec<Result<JobOutcome, E>>,
}

impl<E> BatchOutcome<E> {
    /// Indices of the jobs that failed.
    pub fn failed_jobs(&self) -> Vec<usize> {
        self.results
            .iter()
            .enumerate()
            .filter_map(|(k, r)| r.is_err().then_some(k))
            .collect()
    }
}

/// Deterministic fault injection for a batch: jobs listed in `trap_jobs`
/// trap (as [`LaneError::InjectedFault`]) instead of running, and jobs in
/// `stall_cycles` are charged extra lane cycles, modeling a DMA engine that
/// delivered their block late.
#[derive(Debug, Clone, Default)]
pub struct FaultHook {
    /// Jobs that trap instead of executing.
    pub trap_jobs: BTreeSet<usize>,
    /// Extra cycles charged to a job's lane before it runs.
    pub stall_cycles: BTreeMap<usize, u64>,
}

impl FaultHook {
    /// Empty hook (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `job` to trap.
    pub fn trap(mut self, job: usize) -> Self {
        self.trap_jobs.insert(job);
        self
    }

    /// Charges `cycles` of DMA stall to `job`.
    pub fn stall(mut self, job: usize, cycles: u64) -> Self {
        self.stall_cycles.insert(job, cycles);
        self
    }

    /// True when the hook injects nothing.
    pub fn is_empty(&self) -> bool {
        self.trap_jobs.is_empty() && self.stall_cycles.is_empty()
    }
}

/// Accelerator configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Accelerator {
    /// Number of parallel lanes (paper: 64).
    pub lanes: usize,
    /// Clock frequency (paper at 14 nm: 1.6 GHz).
    pub freq_hz: f64,
}

impl Default for Accelerator {
    fn default() -> Self {
        Accelerator { lanes: energy::LANES, freq_hz: energy::FREQ_HZ }
    }
}

/// Aggregate result of running a batch of jobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccelReport {
    /// Jobs executed.
    pub jobs: usize,
    /// Jobs that failed (trapped or returned an error).
    pub jobs_failed: usize,
    /// Lanes configured.
    pub lanes: usize,
    /// Longest per-lane cycle sum — wall-clock cycles for the batch.
    pub makespan_cycles: u64,
    /// Sum of cycles across all lanes (busy cycles).
    pub busy_cycles: u64,
    /// Injected DMA-stall cycles included in the totals above.
    pub injected_stall_cycles: u64,
    /// Total bytes produced (successful jobs only).
    pub output_bytes: u64,
    /// `busy / (makespan * lanes)` — MIMD load balance.
    pub lane_utilization: f64,
    /// Clock frequency used for time/throughput conversions.
    pub freq_hz: f64,
}

impl AccelReport {
    /// Wall-clock seconds for the batch.
    pub fn seconds(&self) -> f64 {
        self.makespan_cycles as f64 / self.freq_hz
    }

    /// Decompressed-output throughput in bytes/second.
    pub fn throughput_bps(&self) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            return 0.0;
        }
        self.output_bytes as f64 / s
    }

    /// Accelerator energy for the batch (busy-time power model, 0.16 W per
    /// 64-lane UDP).
    pub fn energy_joules(&self) -> f64 {
        energy::POWER_W * (self.lanes as f64 / energy::LANES as f64) * self.seconds()
    }
}

impl Accelerator {
    /// Runs `jobs` across the lanes (round-robin assignment, each lane
    /// processes its jobs in order) and collects every job's outcome in job
    /// order. A failed job does not abort the batch — its `Err` is recorded
    /// and the lane moves on to its next job.
    ///
    /// `run` is invoked once per job with a reusable [`Lane`]; it should
    /// execute however many program stages the job needs and return the
    /// total cycles and final output.
    pub fn run_jobs<J, E, F>(&self, jobs: &[J], run: F) -> BatchOutcome<E>
    where
        J: Sync,
        E: From<LaneError> + Send,
        F: Fn(&mut Lane, &J) -> Result<JobOutcome, E> + Sync,
    {
        self.run_jobs_with_faults(jobs, run, &FaultHook::default())
    }

    /// [`Accelerator::run_jobs`] with deterministic fault injection: jobs in
    /// `hook.trap_jobs` trap as [`LaneError::InjectedFault`] without
    /// executing, and `hook.stall_cycles` charges extra lane cycles.
    pub fn run_jobs_with_faults<J, E, F>(
        &self,
        jobs: &[J],
        run: F,
        hook: &FaultHook,
    ) -> BatchOutcome<E>
    where
        J: Sync,
        E: From<LaneError> + Send,
        F: Fn(&mut Lane, &J) -> Result<JobOutcome, E> + Sync,
    {
        assert!(self.lanes > 0, "need at least one lane");
        // Each simulated lane runs on a host thread; job k goes to lane
        // k % lanes, preserving the paper's block-round-robin assignment.
        let per_lane: Vec<(u64, Vec<(usize, Result<JobOutcome, E>)>)> = (0..self.lanes)
            .into_par_iter()
            .map(|lane_idx| {
                let mut lane = Lane::new();
                let mut done = Vec::new();
                let mut stalls = 0u64;
                for (k, job) in jobs.iter().enumerate().skip(lane_idx).step_by(self.lanes) {
                    stalls += hook.stall_cycles.get(&k).copied().unwrap_or(0);
                    let result = if hook.trap_jobs.contains(&k) {
                        Err(E::from(LaneError::InjectedFault))
                    } else {
                        run(&mut lane, job)
                    };
                    done.push((k, result));
                }
                (stalls, done)
            })
            .collect();

        let mut results: Vec<Option<Result<JobOutcome, E>>> =
            (0..jobs.len()).map(|_| None).collect();
        let mut makespan = 0u64;
        let mut busy = 0u64;
        let mut out_bytes = 0u64;
        let mut failed = 0usize;
        let mut stall_total = 0u64;
        for (stalls, lane_jobs) in per_lane {
            let mut lane_cycles = stalls;
            stall_total += stalls;
            for (k, r) in lane_jobs {
                match &r {
                    Ok(o) => {
                        lane_cycles += o.cycles;
                        out_bytes += o.output.len() as u64;
                    }
                    Err(_) => failed += 1,
                }
                results[k] = Some(r);
            }
            makespan = makespan.max(lane_cycles);
            busy += lane_cycles;
        }
        let results: Vec<Result<JobOutcome, E>> = results
            .into_iter()
            .map(|r| r.expect("round-robin covers every job index exactly once"))
            .collect();
        let report = AccelReport {
            jobs: jobs.len(),
            jobs_failed: failed,
            lanes: self.lanes,
            makespan_cycles: makespan,
            busy_cycles: busy,
            injected_stall_cycles: stall_total,
            output_bytes: out_bytes,
            lane_utilization: if makespan == 0 {
                1.0
            } else {
                busy as f64 / (makespan as f64 * self.lanes as f64)
            },
            freq_hz: self.freq_hz,
        };
        BatchOutcome { report, results }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::RunResult;

    /// Fake job: pretend each job costs `cycles` and emits `bytes` zeros.
    struct Fake {
        cycles: u64,
        bytes: usize,
    }

    fn run_fake(_lane: &mut Lane, j: &Fake) -> Result<JobOutcome, LaneError> {
        Ok(JobOutcome { cycles: j.cycles, output: vec![0u8; j.bytes] })
    }

    #[test]
    fn balanced_jobs_keep_lanes_busy() {
        let acc = Accelerator { lanes: 4, freq_hz: 1e9 };
        let jobs: Vec<Fake> = (0..16).map(|_| Fake { cycles: 100, bytes: 10 }).collect();
        let out = acc.run_jobs(&jobs, run_fake);
        let r = &out.report;
        assert_eq!(r.makespan_cycles, 400);
        assert_eq!(r.busy_cycles, 1600);
        assert!((r.lane_utilization - 1.0).abs() < 1e-12);
        assert_eq!(r.output_bytes, 160);
        assert_eq!(r.jobs_failed, 0);
        assert_eq!(out.results.len(), 16);
        assert!(out.results.iter().all(Result::is_ok));
        // throughput = 160 B / (400 cycles / 1e9) = 400 MB/s
        assert!((r.throughput_bps() - 4e8).abs() < 1.0);
    }

    #[test]
    fn skewed_jobs_reduce_utilization() {
        let acc = Accelerator { lanes: 4, freq_hz: 1e9 };
        let mut jobs: Vec<Fake> = (0..4).map(|_| Fake { cycles: 10, bytes: 1 }).collect();
        jobs[0].cycles = 1000;
        let out = acc.run_jobs(&jobs, run_fake);
        assert_eq!(out.report.makespan_cycles, 1000);
        assert!(out.report.lane_utilization < 0.3);
    }

    #[test]
    fn failing_job_is_isolated_not_fatal() {
        let acc = Accelerator { lanes: 2, freq_hz: 1e9 };
        let jobs = vec![1u8, 2, 3];
        let out = acc.run_jobs(&jobs, |_lane, &j| {
            if j == 3 {
                Err(LaneError::CycleLimit { limit: 1 })
            } else {
                Ok(JobOutcome { cycles: 1, output: vec![7] })
            }
        });
        assert_eq!(out.report.jobs_failed, 1);
        assert_eq!(out.failed_jobs(), vec![2]);
        assert!(out.results[0].is_ok());
        assert!(out.results[1].is_ok());
        assert!(matches!(out.results[2], Err(LaneError::CycleLimit { .. })));
        // The healthy jobs' output still arrived.
        assert_eq!(out.report.output_bytes, 2);
    }

    #[test]
    fn injected_trap_hits_exactly_the_marked_job() {
        let acc = Accelerator { lanes: 2, freq_hz: 1e9 };
        let jobs: Vec<Fake> = (0..6).map(|_| Fake { cycles: 10, bytes: 4 }).collect();
        let hook = FaultHook::new().trap(3);
        let out = acc.run_jobs_with_faults(&jobs, run_fake, &hook);
        assert_eq!(out.failed_jobs(), vec![3]);
        assert!(matches!(out.results[3], Err(LaneError::InjectedFault)));
        assert_eq!(out.report.jobs_failed, 1);
        // 5 successful jobs * 4 bytes.
        assert_eq!(out.report.output_bytes, 20);
    }

    #[test]
    fn injected_stall_charges_cycles() {
        let acc = Accelerator { lanes: 2, freq_hz: 1e9 };
        let jobs: Vec<Fake> = (0..4).map(|_| Fake { cycles: 100, bytes: 1 }).collect();
        let hook = FaultHook::new().stall(0, 500);
        let out = acc.run_jobs_with_faults::<_, LaneError, _>(&jobs, run_fake, &hook);
        // Lane 0 runs jobs 0 and 2 (200 cycles) plus the 500-cycle stall.
        assert_eq!(out.report.makespan_cycles, 700);
        assert_eq!(out.report.injected_stall_cycles, 500);
        assert_eq!(out.report.jobs_failed, 0);
    }

    #[test]
    fn empty_batch_is_trivial() {
        let acc = Accelerator::default();
        let out = acc.run_jobs::<Fake, LaneError, _>(&[], run_fake);
        assert_eq!(out.report.makespan_cycles, 0);
        assert!(out.results.is_empty());
        assert_eq!(out.report.throughput_bps(), 0.0);
    }

    #[test]
    fn default_matches_paper_constants() {
        let acc = Accelerator::default();
        assert_eq!(acc.lanes, 64);
        assert!((acc.freq_hz - 1.6e9).abs() < 1.0);
    }

    // Silence the unused-import lint while documenting intent: RunResult is
    // the lane-level analogue of JobOutcome.
    #[allow(dead_code)]
    fn _type_bridge(r: RunResult) -> JobOutcome {
        JobOutcome { cycles: r.cycles, output: r.output }
    }
}
