//! The 64-lane UDP accelerator: MIMD scheduling of independent block jobs
//! across lanes, with makespan, throughput, utilization and energy
//! accounting (paper Fig. 8: parallel lanes exploit the block-oriented
//! pattern of SpMV recoding).
//!
//! A batch never aborts on the first lane trap: every job's outcome is
//! collected so callers can retry or re-fetch just the failed blocks. A
//! [`FaultHook`] lets tests inject transient lane traps and DMA stalls into
//! the batch deterministically.

use crate::energy;
use crate::error::UdpError;
use crate::lane::{Lane, LaneError, OpClassCycles};
use crate::machine::Image;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Per-decode-stage cycle attribution for one job (or aggregated over a
/// batch). Stages that a pipeline config disables simply stay zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageCycles {
    /// Canonical-Huffman decode stage.
    pub huffman: u64,
    /// Snappy decode stage.
    pub snappy: u64,
    /// Inverse zigzag-delta stage.
    pub delta: u64,
}

impl StageCycles {
    /// Sum across stages.
    pub fn total(&self) -> u64 {
        self.huffman + self.snappy + self.delta
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &StageCycles) {
        self.huffman += other.huffman;
        self.snappy += other.snappy;
        self.delta += other.delta;
    }
}

/// What one job produced on a lane.
#[derive(Debug, Clone, Default)]
pub struct JobOutcome {
    /// Cycles the job consumed on its lane.
    pub cycles: u64,
    /// Cycle attribution by opcode class (zero when the runner does not
    /// track it, e.g. synthetic jobs in tests).
    pub opclass: OpClassCycles,
    /// Cycle attribution by decode stage (zero when not applicable).
    pub stage_cycles: StageCycles,
    /// Bytes the job produced.
    pub output: Vec<u8>,
}

/// One lane's share of a batch — the per-lane busy/stall/trap breakdown
/// surfaced in [`AccelReport::lane_profiles`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LaneProfile {
    /// Lane index (job `k` runs on lane `k % lanes`).
    pub lane: usize,
    /// Jobs assigned to this lane.
    pub jobs: usize,
    /// Jobs that trapped or errored on this lane.
    pub jobs_failed: usize,
    /// Cycles spent executing successful jobs.
    pub busy_cycles: u64,
    /// Injected DMA-stall cycles charged to this lane.
    pub stall_cycles: u64,
    /// Output bytes produced by this lane.
    pub output_bytes: u64,
    /// Opcode-class attribution of this lane's busy cycles.
    pub opclass: OpClassCycles,
}

/// One per-job record emitted through the event sink of
/// [`Accelerator::run_jobs_observed`] — enough for the fault-injection
/// suite to assert on what actually ran where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobEvent {
    /// Job index in the submitted batch.
    pub job: usize,
    /// Lane the job ran on.
    pub lane: usize,
    /// Cycles the job consumed (0 for failed jobs).
    pub cycles: u64,
    /// Injected stall cycles charged to the lane before this job.
    pub stall_cycles: u64,
    /// Whether the job completed successfully.
    pub ok: bool,
}

/// Event sink: called once per job, from lane worker threads.
pub type JobEventSink<'a> = &'a (dyn Fn(&JobEvent) + Sync);

/// The one definition of MIMD lane utilization: `busy / (makespan * lanes)`.
///
/// Every consumer — the batch scheduler, the retry-folding exec path, and
/// the overlapped executor — must derive utilization through this helper so
/// the paths cannot drift apart. An empty batch (zero makespan) counts as
/// fully utilized.
pub fn lane_utilization(busy_cycles: u64, makespan_cycles: u64, lanes: usize) -> f64 {
    if makespan_cycles == 0 {
        1.0
    } else {
        busy_cycles as f64 / (makespan_cycles as f64 * lanes as f64)
    }
}

/// Result of a batch: aggregate report plus every job's individual outcome
/// in job order. Failed jobs are `Err` entries — the batch itself always
/// completes so callers can recover per job.
#[derive(Debug)]
pub struct BatchOutcome<E> {
    /// Aggregate cycle/throughput accounting (failed jobs contribute their
    /// stall cycles but no output bytes).
    pub report: AccelReport,
    /// Per-job outcome, indexed by job position in the submitted batch.
    pub results: Vec<Result<JobOutcome, E>>,
}

impl<E> BatchOutcome<E> {
    /// Indices of the jobs that failed.
    pub fn failed_jobs(&self) -> Vec<usize> {
        self.results.iter().enumerate().filter_map(|(k, r)| r.is_err().then_some(k)).collect()
    }
}

/// Deterministic fault injection for a batch: jobs listed in `trap_jobs`
/// trap (as [`LaneError::InjectedFault`]) instead of running, jobs in
/// `stall_cycles` are charged extra lane cycles, modeling a DMA engine that
/// delivered their block late, and jobs in `panic_jobs` *panic* inside the
/// lane worker — exercising the dispatch layer's `catch_unwind` boundary.
#[derive(Debug, Clone, Default)]
pub struct FaultHook {
    /// Jobs that trap instead of executing.
    pub trap_jobs: BTreeSet<usize>,
    /// Extra cycles charged to a job's lane before it runs.
    pub stall_cycles: BTreeMap<usize, u64>,
    /// Jobs whose lane worker panics instead of executing; contained by
    /// [`Accelerator::run_jobs_from`] and surfaced as
    /// [`LaneError::Panicked`].
    pub panic_jobs: BTreeSet<usize>,
    /// Tiles whose *multiply* worker panics in the overlap executor
    /// (stage-boundary injection point; ignored by the batch path).
    pub panic_tiles: BTreeSet<usize>,
}

impl FaultHook {
    /// Empty hook (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `job` to trap.
    pub fn trap(mut self, job: usize) -> Self {
        self.trap_jobs.insert(job);
        self
    }

    /// Charges `cycles` of DMA stall to `job`.
    pub fn stall(mut self, job: usize, cycles: u64) -> Self {
        self.stall_cycles.insert(job, cycles);
        self
    }

    /// Marks `job` to panic inside its lane worker.
    pub fn panic_job(mut self, job: usize) -> Self {
        self.panic_jobs.insert(job);
        self
    }

    /// Marks overlap tile `tile` to panic in its multiply worker.
    pub fn panic_tile(mut self, tile: usize) -> Self {
        self.panic_tiles.insert(tile);
        self
    }

    /// True when the hook injects nothing.
    pub fn is_empty(&self) -> bool {
        self.trap_jobs.is_empty()
            && self.stall_cycles.is_empty()
            && self.panic_jobs.is_empty()
            && self.panic_tiles.is_empty()
    }
}

/// Renders a `catch_unwind` payload as a message (string payloads pass
/// through; anything else gets a placeholder).
pub fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Accelerator configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Accelerator {
    /// Number of parallel lanes (paper: 64).
    pub lanes: usize,
    /// Clock frequency (paper at 14 nm: 1.6 GHz).
    pub freq_hz: f64,
}

impl Default for Accelerator {
    fn default() -> Self {
        Accelerator { lanes: energy::LANES, freq_hz: energy::FREQ_HZ }
    }
}

/// Aggregate result of running a batch of jobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccelReport {
    /// Jobs executed.
    pub jobs: usize,
    /// Jobs that failed (trapped or returned an error).
    pub jobs_failed: usize,
    /// Lanes configured.
    pub lanes: usize,
    /// Longest per-lane cycle sum — wall-clock cycles for the batch.
    pub makespan_cycles: u64,
    /// Sum of cycles across all lanes (busy cycles).
    pub busy_cycles: u64,
    /// Injected DMA-stall cycles included in the totals above.
    pub injected_stall_cycles: u64,
    /// Total bytes produced (successful jobs only).
    pub output_bytes: u64,
    /// `busy / (makespan * lanes)` — MIMD load balance.
    pub lane_utilization: f64,
    /// Clock frequency used for time/throughput conversions.
    pub freq_hz: f64,
    /// Per-lane busy/stall/trap breakdown (one entry per configured lane).
    #[serde(default)]
    pub lane_profiles: Vec<LaneProfile>,
    /// Batch-wide cycle attribution by opcode class (successful jobs).
    #[serde(default)]
    pub opclass: OpClassCycles,
    /// Batch-wide cycle attribution by decode stage (successful jobs).
    #[serde(default)]
    pub stage_cycles: StageCycles,
}

impl AccelReport {
    /// Wall-clock seconds for the batch.
    pub fn seconds(&self) -> f64 {
        self.makespan_cycles as f64 / self.freq_hz
    }

    /// Decompressed-output throughput in bytes/second.
    pub fn throughput_bps(&self) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            return 0.0;
        }
        self.output_bytes as f64 / s
    }

    /// Accelerator energy for the batch (busy-time power model, 0.16 W per
    /// 64-lane UDP).
    pub fn energy_joules(&self) -> f64 {
        energy::POWER_W * (self.lanes as f64 / energy::LANES as f64) * self.seconds()
    }

    /// Recomputes `lane_utilization` from the current busy/makespan totals
    /// via [`lane_utilization`]. Callers that fold extra cycles into the
    /// report after the batch (serialized retries, overlap scheduling) must
    /// call this instead of open-coding the formula.
    pub fn refresh_utilization(&mut self) {
        self.lane_utilization =
            lane_utilization(self.busy_cycles, self.makespan_cycles, self.lanes);
    }

    /// Accumulates `other` into `self`: job counts, cycle totals, and
    /// attribution merge; the makespan extends (waves hand off back-to-back,
    /// so their critical paths add) and utilization is refreshed. Lane
    /// profiles are merged per lane when both sides carry them.
    pub fn absorb_wave(&mut self, other: &AccelReport) {
        self.jobs += other.jobs;
        self.jobs_failed += other.jobs_failed;
        self.makespan_cycles += other.makespan_cycles;
        self.busy_cycles += other.busy_cycles;
        self.injected_stall_cycles += other.injected_stall_cycles;
        self.output_bytes += other.output_bytes;
        self.opclass.merge(&other.opclass);
        self.stage_cycles.merge(&other.stage_cycles);
        if self.lane_profiles.len() == other.lane_profiles.len() {
            for (mine, theirs) in self.lane_profiles.iter_mut().zip(&other.lane_profiles) {
                mine.jobs += theirs.jobs;
                mine.jobs_failed += theirs.jobs_failed;
                mine.busy_cycles += theirs.busy_cycles;
                mine.stall_cycles += theirs.stall_cycles;
                mine.output_bytes += theirs.output_bytes;
                mine.opclass.merge(&theirs.opclass);
            }
        }
        self.refresh_utilization();
    }
}

impl Default for AccelReport {
    /// An empty report for `lanes`-free aggregation contexts: zero work,
    /// full utilization (the empty-batch convention), paper clock.
    fn default() -> Self {
        AccelReport {
            jobs: 0,
            jobs_failed: 0,
            lanes: energy::LANES,
            makespan_cycles: 0,
            busy_cycles: 0,
            injected_stall_cycles: 0,
            output_bytes: 0,
            lane_utilization: 1.0,
            freq_hz: energy::FREQ_HZ,
            lane_profiles: Vec::new(),
            opclass: OpClassCycles::default(),
            stage_cycles: StageCycles::default(),
        }
    }
}

impl Accelerator {
    /// Admission gate: checks each image's static
    /// [`VerifyReport`](crate::verify::VerifyReport) before the batch fans
    /// out to 64 lanes. Hard error on any `Error` finding; `Warn`/`Info`
    /// findings pass (the per-run opt-out lives on
    /// [`RunConfig::allow_unverified`](crate::lane::RunConfig)).
    ///
    /// # Errors
    /// [`UdpError::Verify`] for the first rejected image.
    pub fn admit<'a>(&self, images: impl IntoIterator<Item = &'a Image>) -> Result<(), UdpError> {
        for image in images {
            image.verify_report.gate()?;
        }
        Ok(())
    }

    /// Runs `jobs` across the lanes (round-robin assignment, each lane
    /// processes its jobs in order) and collects every job's outcome in job
    /// order. A failed job does not abort the batch — its `Err` is recorded
    /// and the lane moves on to its next job.
    ///
    /// `run` is invoked once per job with a reusable [`Lane`]; it should
    /// execute however many program stages the job needs and return the
    /// total cycles and final output.
    pub fn run_jobs<J, E, F>(&self, jobs: &[J], run: F) -> BatchOutcome<E>
    where
        J: Sync,
        E: From<LaneError> + Send,
        F: Fn(&mut Lane, &J) -> Result<JobOutcome, E> + Sync,
    {
        self.run_jobs_with_faults(jobs, run, &FaultHook::default())
    }

    /// [`Accelerator::run_jobs`] with deterministic fault injection: jobs in
    /// `hook.trap_jobs` trap as [`LaneError::InjectedFault`] without
    /// executing, and `hook.stall_cycles` charges extra lane cycles.
    pub fn run_jobs_with_faults<J, E, F>(
        &self,
        jobs: &[J],
        run: F,
        hook: &FaultHook,
    ) -> BatchOutcome<E>
    where
        J: Sync,
        E: From<LaneError> + Send,
        F: Fn(&mut Lane, &J) -> Result<JobOutcome, E> + Sync,
    {
        self.run_jobs_observed(jobs, run, hook, None)
    }

    /// [`Accelerator::run_jobs_with_faults`] plus an optional per-job event
    /// sink: `sink` is invoked once per job (from lane worker threads, so it
    /// must be `Sync`) with the job's lane, cycles, injected stalls, and
    /// success flag. The fault-injection suite uses this to assert on the
    /// events the batch actually emitted.
    pub fn run_jobs_observed<J, E, F>(
        &self,
        jobs: &[J],
        run: F,
        hook: &FaultHook,
        sink: Option<JobEventSink<'_>>,
    ) -> BatchOutcome<E>
    where
        J: Sync,
        E: From<LaneError> + Send,
        F: Fn(&mut Lane, &J) -> Result<JobOutcome, E> + Sync,
    {
        self.run_jobs_from(0, jobs, run, hook, sink)
    }

    /// Batch-handoff entry point: runs a *wave* of jobs whose global batch
    /// numbering starts at `job_base`. Lane assignment, fault-hook lookups,
    /// and emitted [`JobEvent`]s all use the global index `job_base + k`, so
    /// a pipelined caller can hand the accelerator one tile's blocks at a
    /// time while keeping the exact job→lane mapping and fault semantics of
    /// a single monolithic batch. `outcome.results` stays indexed by the
    /// *local* position within `jobs`.
    pub fn run_jobs_from<J, E, F>(
        &self,
        job_base: usize,
        jobs: &[J],
        run: F,
        hook: &FaultHook,
        sink: Option<JobEventSink<'_>>,
    ) -> BatchOutcome<E>
    where
        J: Sync,
        E: From<LaneError> + Send,
        F: Fn(&mut Lane, &J) -> Result<JobOutcome, E> + Sync,
    {
        type LaneRun<E> = (LaneProfile, StageCycles, Vec<(usize, Result<JobOutcome, E>)>);
        assert!(self.lanes > 0, "need at least one lane");
        // Each simulated lane runs on a host thread; global job g goes to
        // lane g % lanes, preserving the paper's block-round-robin
        // assignment across wave boundaries.
        let per_lane: Vec<LaneRun<E>> = (0..self.lanes)
            .into_par_iter()
            .map(|lane_idx| {
                let mut lane = crate::pool::global().checkout();
                let mut done = Vec::new();
                let mut profile = LaneProfile { lane: lane_idx, ..Default::default() };
                let mut stages = StageCycles::default();
                // First local index whose global position lands on this
                // lane: job_base + start ≡ lane_idx (mod lanes).
                let start = (lane_idx + self.lanes - job_base % self.lanes) % self.lanes;
                for (k, job) in jobs.iter().enumerate().skip(start).step_by(self.lanes) {
                    let g = job_base + k;
                    let stall = hook.stall_cycles.get(&g).copied().unwrap_or(0);
                    profile.stall_cycles += stall;
                    let result = if hook.trap_jobs.contains(&g) {
                        // Injected traps model transient lane faults, so
                        // they count against the lane's health record just
                        // like organic traps do.
                        lane.note_trap();
                        Err(E::from(LaneError::InjectedFault))
                    } else {
                        // Panic containment: a panicking job (injected or
                        // organic) must never unwind through the rayon
                        // worker — it becomes a typed per-job error and the
                        // lane moves on to its next job.
                        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            assert!(!hook.panic_jobs.contains(&g), "injected panic in job {g}");
                            run(&mut lane, job)
                        }));
                        match caught {
                            Ok(r) => r,
                            Err(payload) => {
                                lane.note_trap();
                                Err(E::from(LaneError::Panicked {
                                    message: panic_payload_message(payload.as_ref()),
                                }))
                            }
                        }
                    };
                    profile.jobs += 1;
                    let mut cycles = 0u64;
                    match &result {
                        Ok(o) => {
                            cycles = o.cycles;
                            profile.busy_cycles += o.cycles;
                            profile.output_bytes += o.output.len() as u64;
                            profile.opclass.merge(&o.opclass);
                            stages.merge(&o.stage_cycles);
                        }
                        Err(_) => profile.jobs_failed += 1,
                    }
                    if let Some(sink) = sink {
                        sink(&JobEvent {
                            job: g,
                            lane: lane_idx,
                            cycles,
                            stall_cycles: stall,
                            ok: result.is_ok(),
                        });
                    }
                    done.push((k, result));
                }
                (profile, stages, done)
            })
            .collect();

        let mut results: Vec<Option<Result<JobOutcome, E>>> =
            (0..jobs.len()).map(|_| None).collect();
        let mut makespan = 0u64;
        let mut busy = 0u64;
        let mut out_bytes = 0u64;
        let mut failed = 0usize;
        let mut stall_total = 0u64;
        let mut opclass = OpClassCycles::default();
        let mut stage_cycles = StageCycles::default();
        let mut lane_profiles = Vec::with_capacity(self.lanes);
        for (profile, stages, lane_jobs) in per_lane {
            // A lane's wall-clock share is its successful-job cycles plus
            // any injected stalls (failed jobs cost no modeled cycles).
            let lane_cycles = profile.busy_cycles + profile.stall_cycles;
            stall_total += profile.stall_cycles;
            out_bytes += profile.output_bytes;
            failed += profile.jobs_failed;
            opclass.merge(&profile.opclass);
            stage_cycles.merge(&stages);
            for (k, r) in lane_jobs {
                results[k] = Some(r);
            }
            makespan = makespan.max(lane_cycles);
            busy += lane_cycles;
            lane_profiles.push(profile);
        }
        let results: Vec<Result<JobOutcome, E>> = results
            .into_iter()
            .map(|r| r.expect("round-robin covers every job index exactly once"))
            .collect();
        let report = AccelReport {
            jobs: jobs.len(),
            jobs_failed: failed,
            lanes: self.lanes,
            makespan_cycles: makespan,
            busy_cycles: busy,
            injected_stall_cycles: stall_total,
            output_bytes: out_bytes,
            lane_utilization: lane_utilization(busy, makespan, self.lanes),
            freq_hz: self.freq_hz,
            lane_profiles,
            opclass,
            stage_cycles,
        };
        BatchOutcome { report, results }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::RunResult;

    /// Fake job: pretend each job costs `cycles` and emits `bytes` zeros.
    struct Fake {
        cycles: u64,
        bytes: usize,
    }

    // The Result is forced by the `run_jobs` callback signature.
    #[allow(clippy::unnecessary_wraps)]
    fn run_fake(_lane: &mut Lane, j: &Fake) -> Result<JobOutcome, LaneError> {
        Ok(JobOutcome { cycles: j.cycles, output: vec![0u8; j.bytes], ..Default::default() })
    }

    #[test]
    fn balanced_jobs_keep_lanes_busy() {
        let acc = Accelerator { lanes: 4, freq_hz: 1e9 };
        let jobs: Vec<Fake> = (0..16).map(|_| Fake { cycles: 100, bytes: 10 }).collect();
        let out = acc.run_jobs(&jobs, run_fake);
        let r = &out.report;
        assert_eq!(r.makespan_cycles, 400);
        assert_eq!(r.busy_cycles, 1600);
        assert!((r.lane_utilization - 1.0).abs() < 1e-12);
        assert_eq!(r.output_bytes, 160);
        assert_eq!(r.jobs_failed, 0);
        assert_eq!(out.results.len(), 16);
        assert!(out.results.iter().all(Result::is_ok));
        // throughput = 160 B / (400 cycles / 1e9) = 400 MB/s
        assert!((r.throughput_bps() - 4e8).abs() < 1.0);
    }

    #[test]
    fn skewed_jobs_reduce_utilization() {
        let acc = Accelerator { lanes: 4, freq_hz: 1e9 };
        let mut jobs: Vec<Fake> = (0..4).map(|_| Fake { cycles: 10, bytes: 1 }).collect();
        jobs[0].cycles = 1000;
        let out = acc.run_jobs(&jobs, run_fake);
        assert_eq!(out.report.makespan_cycles, 1000);
        assert!(out.report.lane_utilization < 0.3);
    }

    #[test]
    fn failing_job_is_isolated_not_fatal() {
        let acc = Accelerator { lanes: 2, freq_hz: 1e9 };
        let jobs = vec![1u8, 2, 3];
        let out = acc.run_jobs(&jobs, |_lane, &j| {
            if j == 3 {
                Err(LaneError::CycleLimit { limit: 1 })
            } else {
                Ok(JobOutcome { cycles: 1, output: vec![7], ..Default::default() })
            }
        });
        assert_eq!(out.report.jobs_failed, 1);
        assert_eq!(out.failed_jobs(), vec![2]);
        assert!(out.results[0].is_ok());
        assert!(out.results[1].is_ok());
        assert!(matches!(out.results[2], Err(LaneError::CycleLimit { .. })));
        // The healthy jobs' output still arrived.
        assert_eq!(out.report.output_bytes, 2);
    }

    #[test]
    fn injected_trap_hits_exactly_the_marked_job() {
        let acc = Accelerator { lanes: 2, freq_hz: 1e9 };
        let jobs: Vec<Fake> = (0..6).map(|_| Fake { cycles: 10, bytes: 4 }).collect();
        let hook = FaultHook::new().trap(3);
        let out = acc.run_jobs_with_faults(&jobs, run_fake, &hook);
        assert_eq!(out.failed_jobs(), vec![3]);
        assert!(matches!(out.results[3], Err(LaneError::InjectedFault)));
        assert_eq!(out.report.jobs_failed, 1);
        // 5 successful jobs * 4 bytes.
        assert_eq!(out.report.output_bytes, 20);
    }

    #[test]
    fn injected_stall_charges_cycles() {
        let acc = Accelerator { lanes: 2, freq_hz: 1e9 };
        let jobs: Vec<Fake> = (0..4).map(|_| Fake { cycles: 100, bytes: 1 }).collect();
        let hook = FaultHook::new().stall(0, 500);
        let out = acc.run_jobs_with_faults::<_, LaneError, _>(&jobs, run_fake, &hook);
        // Lane 0 runs jobs 0 and 2 (200 cycles) plus the 500-cycle stall.
        assert_eq!(out.report.makespan_cycles, 700);
        assert_eq!(out.report.injected_stall_cycles, 500);
        assert_eq!(out.report.jobs_failed, 0);
    }

    #[test]
    fn empty_batch_is_trivial() {
        let acc = Accelerator::default();
        let out = acc.run_jobs::<Fake, LaneError, _>(&[], run_fake);
        assert_eq!(out.report.makespan_cycles, 0);
        assert!(out.results.is_empty());
        assert_eq!(out.report.throughput_bps(), 0.0);
    }

    #[test]
    fn default_matches_paper_constants() {
        let acc = Accelerator::default();
        assert_eq!(acc.lanes, 64);
        assert!((acc.freq_hz - 1.6e9).abs() < 1.0);
    }

    #[test]
    fn lane_profiles_cover_every_lane_and_sum_to_batch_totals() {
        let acc = Accelerator { lanes: 4, freq_hz: 1e9 };
        let jobs: Vec<Fake> = (0..10).map(|i| Fake { cycles: 10 * (i + 1), bytes: 3 }).collect();
        let hook = FaultHook::new().trap(1).stall(2, 77);
        let out = acc.run_jobs_with_faults::<_, LaneError, _>(&jobs, run_fake, &hook);
        let r = &out.report;
        assert_eq!(r.lane_profiles.len(), 4);
        for (i, p) in r.lane_profiles.iter().enumerate() {
            assert_eq!(p.lane, i);
        }
        let busy: u64 = r.lane_profiles.iter().map(|p| p.busy_cycles + p.stall_cycles).sum();
        assert_eq!(busy, r.busy_cycles);
        let stalls: u64 = r.lane_profiles.iter().map(|p| p.stall_cycles).sum();
        assert_eq!(stalls, r.injected_stall_cycles);
        let bytes: u64 = r.lane_profiles.iter().map(|p| p.output_bytes).sum();
        assert_eq!(bytes, r.output_bytes);
        let failed: usize = r.lane_profiles.iter().map(|p| p.jobs_failed).sum();
        assert_eq!(failed, r.jobs_failed);
        let assigned: usize = r.lane_profiles.iter().map(|p| p.jobs).sum();
        assert_eq!(assigned, r.jobs);
        // Job 1 runs on lane 1, so that's where the trap must show up.
        assert_eq!(r.lane_profiles[1].jobs_failed, 1);
        assert_eq!(r.lane_profiles[2].stall_cycles, 77);
    }

    #[test]
    fn event_sink_sees_every_job_with_lane_and_outcome() {
        use std::sync::Mutex;
        let acc = Accelerator { lanes: 3, freq_hz: 1e9 };
        let jobs: Vec<Fake> = (0..7).map(|_| Fake { cycles: 5, bytes: 1 }).collect();
        let hook = FaultHook::new().trap(4).stall(5, 9);
        let events: Mutex<Vec<JobEvent>> = Mutex::new(Vec::new());
        let sink = |e: &JobEvent| events.lock().unwrap().push(*e);
        let out = acc.run_jobs_observed::<_, LaneError, _>(&jobs, run_fake, &hook, Some(&sink));
        let mut events = events.into_inner().unwrap();
        events.sort_by_key(|e| e.job);
        assert_eq!(events.len(), 7);
        for (k, e) in events.iter().enumerate() {
            assert_eq!(e.job, k);
            assert_eq!(e.lane, k % 3);
            assert_eq!(e.ok, k != 4);
            assert_eq!(e.cycles, if k == 4 { 0 } else { 5 });
            assert_eq!(e.stall_cycles, if k == 5 { 9 } else { 0 });
        }
        assert_eq!(out.report.jobs_failed, 1);
    }

    #[test]
    fn waves_with_offsets_match_one_monolithic_batch() {
        use std::sync::Mutex;
        let acc = Accelerator { lanes: 3, freq_hz: 1e9 };
        let jobs: Vec<Fake> = (0..11).map(|i| Fake { cycles: 10 + i, bytes: 2 }).collect();
        let hook = FaultHook::new().trap(4).stall(7, 13);

        let mono = acc.run_jobs_with_faults::<_, LaneError, _>(&jobs, run_fake, &hook);

        // Same jobs, handed off in three waves with global numbering.
        let events: Mutex<Vec<JobEvent>> = Mutex::new(Vec::new());
        let sink = |e: &JobEvent| events.lock().unwrap().push(*e);
        let mut agg = AccelReport { lanes: 3, freq_hz: 1e9, ..Default::default() };
        agg.lane_profiles = (0..3).map(|l| LaneProfile { lane: l, ..Default::default() }).collect();
        let mut results = Vec::new();
        let mut base = 0usize;
        for wave in jobs.chunks(4) {
            let out =
                acc.run_jobs_from::<_, LaneError, _>(base, wave, run_fake, &hook, Some(&sink));
            agg.absorb_wave(&out.report);
            results.extend(out.results);
            base += wave.len();
        }
        // Cycle totals and job accounting line up with the monolithic run.
        assert_eq!(agg.jobs, mono.report.jobs);
        assert_eq!(agg.jobs_failed, mono.report.jobs_failed);
        assert_eq!(agg.busy_cycles, mono.report.busy_cycles);
        assert_eq!(agg.output_bytes, mono.report.output_bytes);
        assert_eq!(agg.injected_stall_cycles, mono.report.injected_stall_cycles);
        // Waves serialize at handoff boundaries, so the critical path can
        // only grow.
        assert!(agg.makespan_cycles >= mono.report.makespan_cycles);
        let util = lane_utilization(agg.busy_cycles, agg.makespan_cycles, agg.lanes);
        assert!((agg.lane_utilization - util).abs() < 1e-12);
        // Every job kept its global lane assignment and fault outcome.
        let mut events = events.into_inner().unwrap();
        events.sort_by_key(|e| e.job);
        assert_eq!(events.len(), 11);
        for (g, e) in events.iter().enumerate() {
            assert_eq!(e.job, g);
            assert_eq!(e.lane, g % 3, "wave handoff must preserve g % lanes");
            assert_eq!(e.ok, g != 4);
            assert_eq!(e.stall_cycles, if g == 7 { 13 } else { 0 });
        }
        assert!(matches!(results[4], Err(LaneError::InjectedFault)));
        assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 10);
        // Per-lane profiles still tile the busy cycles after merging.
        let busy: u64 = agg.lane_profiles.iter().map(|p| p.busy_cycles + p.stall_cycles).sum();
        assert_eq!(busy, agg.busy_cycles);
    }

    #[test]
    fn utilization_helper_is_the_single_source_of_truth() {
        assert_eq!(lane_utilization(0, 0, 64), 1.0, "empty batch convention");
        assert!((lane_utilization(400, 100, 4) - 1.0).abs() < 1e-12);
        assert!((lane_utilization(100, 100, 4) - 0.25).abs() < 1e-12);
        let acc = Accelerator { lanes: 4, freq_hz: 1e9 };
        let jobs: Vec<Fake> = (0..9).map(|i| Fake { cycles: 5 * (i + 1), bytes: 1 }).collect();
        let r = acc.run_jobs::<_, LaneError, _>(&jobs, run_fake).report;
        let want = lane_utilization(r.busy_cycles, r.makespan_cycles, r.lanes);
        assert!((r.lane_utilization - want).abs() < 1e-12);
    }

    // Silence the unused-import lint while documenting intent: RunResult is
    // the lane-level analogue of JobOutcome.
    #[allow(dead_code)]
    fn _type_bridge(r: RunResult) -> JobOutcome {
        JobOutcome {
            cycles: r.cycles,
            opclass: r.opclass,
            stage_cycles: StageCycles::default(),
            output: r.output,
        }
    }
}
