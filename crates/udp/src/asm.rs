//! Textual UDP assembly.
//!
//! The UDP's value proposition is that recoding transformations are
//! *software*; this module provides the human-writable format. Example — a
//! run-length decoder (pairs of `count, byte`):
//!
//! ```text
//! ; rle.udp — expand (count, byte) pairs
//! .entry init
//! init:
//!     mov r2, r14          ; output cursor
//!     jump head
//! head:
//!     inrem r3
//!     beq r3, r0, done
//!     insymle r4, 1        ; count
//!     insymle r5, 1        ; byte value
//! emit:
//!     beq r4, r0, head
//!     storeb r5, r2, 0
//!     addi r2, r2, 1
//!     addi r4, r4, -1
//!     jump emit
//! done:
//!     sub r15, r2, r14
//!     halt
//! ```
//!
//! Grammar (one statement per line; `;` starts a comment):
//!
//! * `.entry LABEL` — entry point (required once).
//! * `LABEL:` — block label. Falling off the end of a labeled run into the
//!   next label inserts an implicit `jump`.
//! * actions: `limm rd, imm` · `mov rd, rs` · `add|sub|and|or|xor rd, rs, rt`
//!   · `addi rd, rs, imm` · `shli|shri rd, rs, amt` ·
//!   `loadb|loadh|loadw|loadd rd, rbase, off` ·
//!   `storeb|storeh|storew|stored rs, rbase, off` · `insym rd, bits` ·
//!   `insymle rd, bytes` · `peek rd, bits` · `skip bits` · `skipreg rs` ·
//!   `inrem rd`
//! * terminators: `jump LABEL` · `halt` ·
//!   `beq|bne|bltu|bgeu|blts|bges rs, rt, LABEL` (fall-through = next line) ·
//!   `dispatch.sym BITS, GROUP` · `dispatch.peek BITS, GROUP` ·
//!   `dispatch.reg rs, GROUP`
//! * `.group NAME { OFFSET: LABEL ... }` — dispatch group (offsets decimal).
//!
//! Blocks longer than four actions are split automatically with `jump`
//! continuations, so straight-line code of any length assembles.

use crate::isa::{Action, Block, BlockId, Cond, Transition, Width};
use crate::program::{Program, ProgramBuilder};
use std::collections::HashMap;

/// Assembly error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// Offending line (0 = file-level).
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError { line, msg: msg.into() }
}

/// Source-line information for one emitted block.
///
/// Line 0 means "synthesized by the assembler" (auto-split continuation
/// chunks, implicit fall-through jumps, anonymous branch fall-through
/// blocks).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockLines {
    /// 1-based line of the label that opens this block (0 = anonymous).
    pub label_line: usize,
    /// 1-based source line of each action slot (0 = synthesized).
    pub action_lines: Vec<usize>,
    /// 1-based line of the terminator statement (0 = synthesized jump).
    pub transition_line: usize,
}

impl BlockLines {
    /// Smallest/largest non-zero source line covered by this block, if any.
    pub fn span(&self) -> Option<(usize, usize)> {
        let lines = std::iter::once(self.label_line)
            .chain(self.action_lines.iter().copied())
            .chain(std::iter::once(self.transition_line))
            .filter(|&l| l != 0);
        let (mut lo, mut hi) = (usize::MAX, 0);
        for l in lines {
            lo = lo.min(l);
            hi = hi.max(l);
        }
        (hi != 0).then_some((lo, hi))
    }
}

/// Block-id → source-line map produced alongside a [`Program`] by
/// [`assemble_text_with_map`]. Lets downstream diagnostics (the static
/// verifier in particular) point findings back at `.udp` source lines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceMap {
    /// Indexed by `BlockId`.
    pub blocks: Vec<BlockLines>,
}

impl SourceMap {
    /// Source span `(first, last)` of `block`, if it maps to source at all.
    pub fn span(&self, block: BlockId) -> Option<(usize, usize)> {
        self.blocks.get(block as usize).and_then(BlockLines::span)
    }

    /// Best line for a finding at `block` / action `slot`: the slot's own
    /// line when it has one, else the start of the block's span.
    pub fn line_for(&self, block: BlockId, slot: Option<usize>) -> Option<usize> {
        let bl = self.blocks.get(block as usize)?;
        if let Some(s) = slot {
            if let Some(&l) = bl.action_lines.get(s) {
                if l != 0 {
                    return Some(l);
                }
            }
        }
        bl.span().map(|(lo, _)| lo)
    }
}

/// A group definition awaiting label resolution: `(name, entries, line)`.
type PendingGroup = (String, Vec<(u32, String)>, usize);

/// A pending statement in source order.
#[derive(Debug, Clone)]
enum Stmt {
    Label(String),
    Action(Action),
    Jump(String),
    Halt,
    Branch { cond: Cond, rs: u8, rt: u8, taken: String },
    DispatchSym { bits: u8, group: String },
    DispatchPeek { bits: u8, group: String },
    DispatchReg { rs: u8, group: String },
}

/// Assembles source text into a validated [`Program`].
///
/// # Errors
/// [`AsmError`] naming the offending line.
pub fn assemble_text(name: &str, src: &str) -> Result<Program, AsmError> {
    assemble_text_with_map(name, src).map(|(p, _)| p)
}

/// Like [`assemble_text`], but also returns the [`SourceMap`] tying each
/// emitted block (and action slot) back to 1-based source lines.
///
/// # Errors
/// [`AsmError`] naming the offending line.
pub fn assemble_text_with_map(name: &str, src: &str) -> Result<(Program, SourceMap), AsmError> {
    let mut stmts: Vec<(usize, Stmt)> = Vec::new();
    let mut groups: Vec<PendingGroup> = Vec::new();
    let mut entry: Option<(String, usize)> = None;

    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".entry") {
            let label = rest.trim();
            if label.is_empty() {
                return Err(err(lineno, ".entry needs a label"));
            }
            if entry.is_some() {
                return Err(err(lineno, "duplicate .entry"));
            }
            entry = Some((label.to_string(), lineno));
            continue;
        }
        if let Some(rest) = line.strip_prefix(".group") {
            let rest = rest.trim();
            let (gname, tail) =
                rest.split_once('{').ok_or_else(|| err(lineno, ".group NAME { ... } expected"))?;
            let gname = gname.trim().to_string();
            if gname.is_empty() {
                return Err(err(lineno, ".group needs a name"));
            }
            let mut entries = Vec::new();
            let mut closed = tail.trim() == "}";
            let mut body_line = lineno;
            if !closed && !tail.trim().is_empty() {
                parse_group_entries(tail, lineno, &mut entries, &mut closed)?;
            }
            while !closed {
                let (gidx, graw) =
                    lines.next().ok_or_else(|| err(body_line, "unterminated .group"))?;
                body_line = gidx + 1;
                let gline = strip_comment(graw).trim().to_string();
                if gline.is_empty() {
                    continue;
                }
                parse_group_entries(&gline, body_line, &mut entries, &mut closed)?;
            }
            groups.push((gname, entries, lineno));
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(lineno, "bad label"));
            }
            stmts.push((lineno, Stmt::Label(label.to_string())));
            continue;
        }
        stmts.push((lineno, parse_instruction(&line, lineno)?));
    }

    lower(name, &stmts, &groups, entry)
}

fn parse_group_entries(
    text: &str,
    lineno: usize,
    entries: &mut Vec<(u32, String)>,
    closed: &mut bool,
) -> Result<(), AsmError> {
    // Accepts `OFFSET:LABEL`, or `OFFSET:` followed by `LABEL` as separate
    // tokens (i.e. whitespace after the colon is fine).
    let mut pending_offset: Option<u32> = None;
    for part in text.split_whitespace() {
        if part == "}" {
            *closed = true;
            continue;
        }
        if *closed {
            return Err(err(lineno, "content after closing }"));
        }
        if let Some(off) = pending_offset.take() {
            entries.push((off, part.to_string()));
            continue;
        }
        let (off, label) = part
            .split_once(':')
            .ok_or_else(|| err(lineno, format!("group entry `{part}` needs OFFSET:LABEL")))?;
        let off: u32 = off.parse().map_err(|_| err(lineno, format!("bad group offset `{off}`")))?;
        if label.is_empty() {
            pending_offset = Some(off);
        } else {
            entries.push((off, label.to_string()));
        }
    }
    if pending_offset.is_some() {
        return Err(err(lineno, "group offset without a label"));
    }
    Ok(())
}

fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(p) => &line[..p],
        None => line,
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<u8, AsmError> {
    let t = tok.trim();
    let n = t
        .strip_prefix('r')
        .and_then(|s| s.parse::<u8>().ok())
        .ok_or_else(|| err(line, format!("expected register, got `{t}`")))?;
    if n >= 16 {
        return Err(err(line, format!("register r{n} out of range")));
    }
    Ok(n)
}

fn parse_int<T: std::str::FromStr>(tok: &str, line: usize) -> Result<T, AsmError> {
    tok.trim().parse::<T>().map_err(|_| err(line, format!("bad integer `{}`", tok.trim())))
}

fn parse_instruction(line: &str, lineno: usize) -> Result<Stmt, AsmError> {
    let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let args: Vec<&str> =
        if rest.is_empty() { vec![] } else { rest.split(',').map(str::trim).collect() };
    let need = |n: usize| -> Result<(), AsmError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(lineno, format!("`{mnemonic}` expects {n} operands, got {}", args.len())))
        }
    };
    let m = mnemonic.to_ascii_lowercase();
    let stmt = match m.as_str() {
        "halt" => {
            need(0)?;
            Stmt::Halt
        }
        "jump" => {
            need(1)?;
            Stmt::Jump(args[0].to_string())
        }
        "limm" => {
            need(2)?;
            Stmt::Action(Action::LoadImm {
                rd: parse_reg(args[0], lineno)?,
                imm: parse_int(args[1], lineno)?,
            })
        }
        "mov" => {
            need(2)?;
            Stmt::Action(Action::Mov {
                rd: parse_reg(args[0], lineno)?,
                rs: parse_reg(args[1], lineno)?,
            })
        }
        "add" | "sub" | "and" | "or" | "xor" => {
            need(3)?;
            let (rd, rs, rt) = (
                parse_reg(args[0], lineno)?,
                parse_reg(args[1], lineno)?,
                parse_reg(args[2], lineno)?,
            );
            Stmt::Action(match m.as_str() {
                "add" => Action::Add { rd, rs, rt },
                "sub" => Action::Sub { rd, rs, rt },
                "and" => Action::And { rd, rs, rt },
                "or" => Action::Or { rd, rs, rt },
                _ => Action::Xor { rd, rs, rt },
            })
        }
        "addi" => {
            need(3)?;
            Stmt::Action(Action::AddI {
                rd: parse_reg(args[0], lineno)?,
                rs: parse_reg(args[1], lineno)?,
                imm: parse_int(args[2], lineno)?,
            })
        }
        "shli" | "shri" => {
            need(3)?;
            let (rd, rs) = (parse_reg(args[0], lineno)?, parse_reg(args[1], lineno)?);
            let amount: u8 = parse_int(args[2], lineno)?;
            Stmt::Action(if m == "shli" {
                Action::ShlI { rd, rs, amount }
            } else {
                Action::ShrI { rd, rs, amount }
            })
        }
        "loadb" | "loadh" | "loadw" | "loadd" => {
            need(3)?;
            Stmt::Action(Action::Load {
                rd: parse_reg(args[0], lineno)?,
                base: parse_reg(args[1], lineno)?,
                offset: parse_int(args[2], lineno)?,
                width: width_of(&m),
            })
        }
        "loadbi" | "loadwi" | "loaddi" => {
            need(2)?;
            Stmt::Action(Action::LoadInc {
                rd: parse_reg(args[0], lineno)?,
                base: parse_reg(args[1], lineno)?,
                width: width_of(&m[..m.len() - 1]),
            })
        }
        "storebi" | "storewi" | "storedi" => {
            need(2)?;
            Stmt::Action(Action::StoreInc {
                rs: parse_reg(args[0], lineno)?,
                base: parse_reg(args[1], lineno)?,
                width: width_of(&m[..m.len() - 1]),
            })
        }
        "storeb" | "storeh" | "storew" | "stored" => {
            need(3)?;
            Stmt::Action(Action::Store {
                rs: parse_reg(args[0], lineno)?,
                base: parse_reg(args[1], lineno)?,
                offset: parse_int(args[2], lineno)?,
                width: width_of(&m),
            })
        }
        "insym" => {
            need(2)?;
            Stmt::Action(Action::InSym {
                rd: parse_reg(args[0], lineno)?,
                bits: parse_int(args[1], lineno)?,
            })
        }
        "insymle" => {
            need(2)?;
            Stmt::Action(Action::InSymLe {
                rd: parse_reg(args[0], lineno)?,
                bytes: parse_int(args[1], lineno)?,
            })
        }
        "peek" => {
            need(2)?;
            Stmt::Action(Action::PeekSym {
                rd: parse_reg(args[0], lineno)?,
                bits: parse_int(args[1], lineno)?,
            })
        }
        "skip" => {
            need(1)?;
            Stmt::Action(Action::SkipSym { bits: parse_int(args[0], lineno)? })
        }
        "skipreg" => {
            need(1)?;
            Stmt::Action(Action::SkipReg { rs: parse_reg(args[0], lineno)? })
        }
        "inrem" => {
            need(1)?;
            Stmt::Action(Action::InRem { rd: parse_reg(args[0], lineno)? })
        }
        "beq" | "bne" | "bltu" | "bgeu" | "blts" | "bges" => {
            need(3)?;
            let cond = match m.as_str() {
                "beq" => Cond::Eq,
                "bne" => Cond::Ne,
                "bltu" => Cond::Ltu,
                "bgeu" => Cond::Geu,
                "blts" => Cond::Lts,
                _ => Cond::Ges,
            };
            Stmt::Branch {
                cond,
                rs: parse_reg(args[0], lineno)?,
                rt: parse_reg(args[1], lineno)?,
                taken: args[2].to_string(),
            }
        }
        "dispatch.sym" | "dispatch.peek" => {
            need(2)?;
            let bits: u8 = parse_int(args[0], lineno)?;
            let group = args[1].to_string();
            if m == "dispatch.sym" {
                Stmt::DispatchSym { bits, group }
            } else {
                Stmt::DispatchPeek { bits, group }
            }
        }
        "dispatch.reg" => {
            need(2)?;
            Stmt::DispatchReg { rs: parse_reg(args[0], lineno)?, group: args[1].to_string() }
        }
        other => return Err(err(lineno, format!("unknown mnemonic `{other}`"))),
    };
    Ok(stmt)
}

fn width_of(m: &str) -> Width {
    match m.as_bytes()[m.len() - 1] {
        b'b' => Width::B1,
        b'h' => Width::B2,
        b'w' => Width::B4,
        _ => Width::B8,
    }
}

/// Closes the open block: splits the action run into ≤4-action chunks
/// chained by jumps, placing the first chunk into the reserved label
/// block when one is pending. Records per-chunk source lines.
fn finish(
    pb: &mut ProgramBuilder,
    current: &mut Option<(BlockId, usize)>,
    actions: &mut Vec<(Action, usize)>,
    transition: Transition,
    transition_line: usize,
    lines_out: &mut Vec<(BlockId, BlockLines)>,
) {
    let mut chunks: Vec<Vec<(Action, usize)>> = Vec::new();
    let mut run = std::mem::take(actions);
    while run.len() > 4 {
        let rest = run.split_off(4);
        chunks.push(run);
        run = rest;
    }
    chunks.push(run);
    // Build tail-first so each chunk knows its successor's id.
    let mut succ: Option<BlockId> = None;
    for (idx, chunk) in chunks.into_iter().enumerate().rev() {
        let (t, t_line) = match succ {
            // Synthesized continuation jump: no source line of its own.
            Some(next) => (Transition::Jump(next), 0),
            None => (transition, transition_line),
        };
        let (acts, act_lines): (Vec<Action>, Vec<usize>) = chunk.into_iter().unzip();
        let block = Block { actions: acts, transition: t };
        let (id, label_line) = if idx == 0 {
            match current.take() {
                Some((reserved, ll)) => {
                    pb.define(reserved, block);
                    (reserved, ll)
                }
                None => (pb.block(block), 0),
            }
        } else {
            (pb.block(block), 0)
        };
        lines_out.push((
            id,
            BlockLines { label_line, action_lines: act_lines, transition_line: t_line },
        ));
        succ = Some(id);
    }
}

/// Lowers the statement list to a [`Program`]: groups statements into
/// blocks, splits over-long action runs, and resolves labels.
fn lower(
    name: &str,
    stmts: &[(usize, Stmt)],
    group_defs: &[PendingGroup],
    entry: Option<(String, usize)>,
) -> Result<(Program, SourceMap), AsmError> {
    let mut pb = ProgramBuilder::new(name);
    let mut label_block: HashMap<String, BlockId> = HashMap::new();
    let mut group_ids: HashMap<String, u32> = HashMap::new();

    // Pre-reserve a block per label and an id per group so references
    // resolve in one pass.
    for (line, s) in stmts {
        if let Stmt::Label(l) = s {
            if label_block.contains_key(l) {
                return Err(err(*line, format!("duplicate label `{l}`")));
            }
            label_block.insert(l.clone(), pb.reserve());
        }
    }
    // Group ids follow after; entries resolved at the end.
    for (gname, _, gline) in group_defs {
        if group_ids.contains_key(gname) {
            return Err(err(*gline, format!("duplicate group `{gname}`")));
        }
        let placeholder = pb.group(vec![]);
        group_ids.insert(gname.clone(), placeholder);
    }

    let resolve_label = |label_block: &HashMap<String, BlockId>, l: &str, line: usize| {
        label_block.get(l).copied().ok_or_else(|| err(line, format!("unknown label `{l}`")))
    };
    let resolve_group = |group_ids: &HashMap<String, u32>, g: &str, line: usize| {
        group_ids.get(g).copied().ok_or_else(|| err(line, format!("unknown group `{g}`")))
    };

    // Walk statements, accumulating actions into the current block.
    // `current` is the reserved id the accumulated actions will fill,
    // paired with the line of the label that opened it (0 = anonymous).
    let mut current: Option<(BlockId, usize)> = None;
    let mut actions: Vec<(Action, usize)> = Vec::new();
    let mut lines_out: Vec<(BlockId, BlockLines)> = Vec::new();

    let mut i = 0usize;
    while i < stmts.len() {
        let (line, stmt) = &stmts[i];
        match stmt {
            Stmt::Label(l) => {
                if current.is_some() || !actions.is_empty() {
                    // Implicit fall into the label: close with a jump.
                    let target = resolve_label(&label_block, l, *line)?;
                    finish(
                        &mut pb,
                        &mut current,
                        &mut actions,
                        Transition::Jump(target),
                        0,
                        &mut lines_out,
                    );
                }
                current = Some((label_block[l], *line));
            }
            Stmt::Action(a) => {
                if current.is_none() && actions.is_empty() {
                    // Code before any label: fine, becomes the entry chain if
                    // .entry names a label later — actually require labels.
                    return Err(err(*line, "instruction before any label"));
                }
                actions.push((*a, *line));
            }
            Stmt::Halt => {
                finish(
                    &mut pb,
                    &mut current,
                    &mut actions,
                    Transition::Halt,
                    *line,
                    &mut lines_out,
                );
            }
            Stmt::Jump(l) => {
                let t = resolve_label(&label_block, l, *line)?;
                finish(
                    &mut pb,
                    &mut current,
                    &mut actions,
                    Transition::Jump(t),
                    *line,
                    &mut lines_out,
                );
            }
            Stmt::DispatchSym { bits, group } => {
                let g = resolve_group(&group_ids, group, *line)?;
                finish(
                    &mut pb,
                    &mut current,
                    &mut actions,
                    Transition::DispatchSym { bits: *bits, group: g },
                    *line,
                    &mut lines_out,
                );
            }
            Stmt::DispatchPeek { bits, group } => {
                let g = resolve_group(&group_ids, group, *line)?;
                finish(
                    &mut pb,
                    &mut current,
                    &mut actions,
                    Transition::DispatchPeek { bits: *bits, group: g },
                    *line,
                    &mut lines_out,
                );
            }
            Stmt::DispatchReg { rs, group } => {
                let g = resolve_group(&group_ids, group, *line)?;
                finish(
                    &mut pb,
                    &mut current,
                    &mut actions,
                    Transition::DispatchReg { rs: *rs, group: g },
                    *line,
                    &mut lines_out,
                );
            }
            Stmt::Branch { cond, rs, rt, taken } => {
                let t = resolve_label(&label_block, taken, *line)?;
                // Fall-through target: a fresh anonymous block starting at
                // the next statement.
                let fall = pb.reserve();
                finish(
                    &mut pb,
                    &mut current,
                    &mut actions,
                    Transition::Branch {
                        cond: *cond,
                        rs: *rs,
                        rt: *rt,
                        taken: t,
                        fallthrough: fall,
                    },
                    *line,
                    &mut lines_out,
                );
                // The fall-through block is anonymous but starts right after
                // the branch line.
                current = Some((fall, 0));
            }
        }
        i += 1;
    }
    if let Some((_, ll)) = current {
        let at = if ll != 0 { ll } else { stmts.last().map_or(0, |(l, _)| *l) };
        return Err(err(at, "program falls off the end (missing halt/jump?)"));
    }
    if !actions.is_empty() {
        let at = actions.last().map_or(0, |(_, l)| *l);
        return Err(err(at, "program falls off the end (missing halt/jump?)"));
    }

    // Fill groups.
    for (gname, entries, gline) in group_defs {
        let gid = group_ids[gname];
        let mut resolved = Vec::with_capacity(entries.len());
        for (off, l) in entries {
            resolved.push((*off, resolve_label(&label_block, l, *gline)?));
        }
        pb.set_group(gid, resolved);
    }

    let (entry_label, entry_line) = entry.ok_or_else(|| err(0, "missing .entry"))?;
    let e = resolve_label(&label_block, &entry_label, entry_line)?;
    pb.entry(e);
    let program = pb.build().map_err(|m| err(0, m.to_string()))?;
    let mut blocks = vec![BlockLines::default(); program.blocks.len()];
    for (id, bl) in lines_out {
        blocks[id as usize] = bl;
    }
    Ok((program, SourceMap { blocks }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::{Lane, RunConfig};
    use crate::machine::assemble;

    const RLE: &str = "\n\
        ; rle decoder\n\
        .entry init\n\
        init:\n\
            mov r2, r14\n\
            jump head\n\
        head:\n\
            inrem r3\n\
            beq r3, r0, done\n\
            insymle r4, 1\n\
            insymle r5, 1\n\
        emit:\n\
            beq r4, r0, head\n\
            storeb r5, r2, 0\n\
            addi r2, r2, 1\n\
            addi r4, r4, -1\n\
            jump emit\n\
        done:\n\
            sub r15, r2, r14\n\
            halt\n";

    #[test]
    fn rle_decoder_assembles_and_runs() {
        let program = assemble_text("rle", RLE).unwrap();
        let image = assemble(&program).unwrap();
        let mut lane = Lane::new();
        let input = [3u8, b'a', 0, b'x', 2, b'b'];
        let r = lane.run(&image, &input, input.len() * 8, RunConfig::default()).unwrap();
        assert_eq!(r.output, b"aaabb");
    }

    #[test]
    fn dispatch_group_syntax() {
        let src = "\n\
            .entry main\n\
            main:\n\
                dispatch.sym 2, tbl\n\
            .group tbl { 0: h0 1: h1 2: h2 3: h3 }\n\
            h0:\n\
                limm r15, 0\n\
                halt\n\
            h1:\n\
                limm r15, 0\n\
                halt\n\
            h2:\n\
                limm r15, 0\n\
                halt\n\
            h3:\n\
                limm r1, 1\n\
                storeb r1, r14, 0\n\
                limm r15, 1\n\
                halt\n";
        let program = assemble_text("disp", src).unwrap();
        let image = assemble(&program).unwrap();
        let mut lane = Lane::new();
        // Symbol 3 (top 2 bits = 0b11) routes to h3, which emits one byte.
        let r = lane.run(&image, &[0b1100_0000], 8, RunConfig::default()).unwrap();
        assert_eq!(r.output, vec![1]);
        // Symbol 0 routes to h0: no output.
        let r = lane.run(&image, &[0b0000_0000], 8, RunConfig::default()).unwrap();
        assert!(r.output.is_empty());
    }

    #[test]
    fn long_action_runs_are_split() {
        let src = "\n\
            .entry main\n\
            main:\n\
                limm r1, 1\n\
                limm r2, 2\n\
                limm r3, 3\n\
                limm r4, 4\n\
                limm r5, 5\n\
                limm r6, 6\n\
                add r7, r5, r6\n\
                storeb r7, r14, 0\n\
                limm r15, 1\n\
                halt\n";
        let program = assemble_text("long", src).unwrap();
        assert!(program.blocks.iter().all(|b| b.actions.len() <= 4));
        let image = assemble(&program).unwrap();
        let mut lane = Lane::new();
        let r = lane.run(&image, &[], 0, RunConfig::default()).unwrap();
        assert_eq!(r.output, vec![11]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble_text("bad", ".entry m\nm:\n    bogus r1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("bogus"));
        let e = assemble_text("bad", ".entry m\nm:\n    limm r99, 0\n    halt\n").unwrap_err();
        assert!(e.msg.contains("register"));
        let e = assemble_text("bad", ".entry m\nm:\n    jump nowhere\n").unwrap_err();
        assert!(e.msg.contains("nowhere"));
    }

    #[test]
    fn missing_entry_or_trailing_code_rejected() {
        assert!(assemble_text("bad", "m:\n    halt\n").unwrap_err().msg.contains(".entry"));
        assert!(assemble_text("bad", ".entry m\nm:\n    limm r1, 0\n")
            .unwrap_err()
            .msg
            .contains("falls off"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "; header\n\n.entry m ; entry\nm: ; label\n    halt ; stop\n";
        assert!(assemble_text("c", src).is_ok());
    }
}
