//! Machine encoding: placed programs become a flat image of 128-bit code
//! words (four 24-bit action slots + one 32-bit transition), the binary the
//! lane actually executes. Unoccupied addresses hold [`HOLE`]; dispatching
//! into one is a runtime trap, which is how corrupt streams surface on the
//! accelerator.

use crate::effclip::{self, Placement};
use crate::error::UdpError;
use crate::isa::{Action, Block, Cond, Transition, Width};
use crate::program::Program;
use crate::verify::{self, VerifyConfig, VerifyReport};

/// Code word marking an unoccupied address.
pub const HOLE: u128 = u128::MAX;

/// Action opcodes (5 bits). 0 = empty slot.
mod op {
    /// Opcode 0 marks an empty action slot (checked by the decoder).
    #[allow(dead_code)]
    pub const NONE: u32 = 0;
    pub const LOAD_IMM: u32 = 1;
    pub const MOV: u32 = 2;
    pub const ADD: u32 = 3;
    pub const SUB: u32 = 4;
    pub const AND: u32 = 5;
    pub const OR: u32 = 6;
    pub const XOR: u32 = 7;
    pub const ADDI: u32 = 8;
    pub const SHLI: u32 = 9;
    pub const SHRI: u32 = 10;
    pub const LOAD_B: u32 = 11;
    pub const LOAD_H: u32 = 12;
    pub const LOAD_W: u32 = 13;
    pub const LOAD_D: u32 = 14;
    pub const STORE_B: u32 = 15;
    pub const STORE_H: u32 = 16;
    pub const STORE_W: u32 = 17;
    pub const STORE_D: u32 = 18;
    pub const IN_SYM: u32 = 19;
    pub const IN_SYM_LE: u32 = 20;
    pub const PEEK_SYM: u32 = 21;
    pub const SKIP_SYM: u32 = 22;
    pub const SKIP_REG: u32 = 23;
    pub const IN_REM: u32 = 24;
    pub const LOAD_B_INC: u32 = 25;
    pub const LOAD_W_INC: u32 = 26;
    pub const LOAD_D_INC: u32 = 27;
    pub const STORE_B_INC: u32 = 28;
    pub const STORE_W_INC: u32 = 29;
    pub const STORE_D_INC: u32 = 30;
    pub const LOAD_H_INC: u32 = 31;
}

/// Transition type tags (3 bits).
mod tt {
    pub const HALT: u32 = 0;
    pub const JUMP: u32 = 1;
    pub const DISPATCH_SYM: u32 = 2;
    pub const DISPATCH_PEEK: u32 = 3;
    pub const DISPATCH_REG: u32 = 4;
    pub const BRANCH: u32 = 5;
}

/// A block after placement: all control targets are concrete addresses.
/// Branch fall-through is implicit (`pc + 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedBlock {
    /// Straight-line actions.
    pub actions: Vec<Action>,
    /// Resolved terminator.
    pub transition: DecodedTransition,
}

/// [`Transition`] with numeric code addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodedTransition {
    /// Stop.
    Halt,
    /// Unconditional jump to an address.
    Jump(u32),
    /// Consume bits; next = `base + symbol`.
    DispatchSym {
        /// Bits consumed.
        bits: u8,
        /// Group base address.
        base: u32,
    },
    /// Peek bits; next = `base + symbol`.
    DispatchPeek {
        /// Bits peeked.
        bits: u8,
        /// Group base address.
        base: u32,
    },
    /// Next = `base + rs`.
    DispatchReg {
        /// Index register.
        rs: u8,
        /// Group base address.
        base: u32,
    },
    /// Conditional: `taken` or `pc + 1`.
    Branch {
        /// Condition.
        cond: Cond,
        /// Left register.
        rs: u8,
        /// Right register.
        rt: u8,
        /// Target address when the condition holds.
        taken: u32,
    },
}

/// A code word decoded once at assemble time into a fixed-size record the
/// lane interpreter can index without allocating: the (at most four) action
/// slots are inlined as an array, unused slots padded with a placeholder
/// that [`PredecodedBlock::actions`] never exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredecodedBlock {
    actions: [Action; 4],
    n_actions: u8,
    /// Resolved terminator (identical to the word-at-a-time decode).
    pub transition: DecodedTransition,
}

/// Placeholder filling unused action slots; never executed (`n_actions`
/// bounds every iteration) and a no-op even if it were (`r0` is hardwired).
const PAD_ACTION: Action = Action::Mov { rd: 0, rs: 0 };

impl PredecodedBlock {
    /// Predecodes one code word; `None` for holes and malformed words —
    /// exactly the cases where [`decode_word`] fails, so a dispatch into
    /// `None` traps identically on both interpreter paths.
    pub fn from_word(w: u128) -> Option<PredecodedBlock> {
        if w == HOLE {
            return None;
        }
        let mut actions = [PAD_ACTION; 4];
        let (n_actions, transition) = decode_word_into(w, &mut actions)?;
        Some(PredecodedBlock { actions, n_actions, transition })
    }

    /// The occupied action slots, in execution order.
    #[inline]
    pub fn actions(&self) -> &[Action] {
        &self.actions[..self.n_actions as usize]
    }
}

/// An executable image: one code word per address, plus the entry address.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// Diagnostic name.
    pub name: String,
    /// Code memory.
    pub words: Vec<u128>,
    /// Entry address.
    pub entry: u32,
    /// Packing density achieved by EffCLiP (for reports).
    pub utilization: f64,
    /// Static-analysis verdict attached by the encoder; the lane refuses to
    /// run images whose report carries `Error` findings unless the caller
    /// opts out via [`RunConfig::allow_unverified`](crate::lane::RunConfig).
    pub verify_report: VerifyReport,
    /// One predecoded record per word (`None` ⇔ [`Image::decode`] fails),
    /// built once at encode time; the lane's hot loop indexes this instead
    /// of re-decoding words per dispatch.
    predecoded: Vec<Option<PredecodedBlock>>,
    /// Native x86-64 lowering of the predecode table, shared across clones
    /// (the pages are immutable once published). `None` when the JIT tier
    /// is unsupported, disabled (`RECODE_NO_JIT=1`), or compilation failed
    /// — the lane then runs the interpreter tier.
    jit: Option<std::sync::Arc<crate::jit::LaneJit>>,
}

impl Image {
    /// Code memory footprint in bytes (16 per word).
    pub fn code_bytes(&self) -> usize {
        self.words.len() * 16
    }

    /// Decodes the word at `addr`. Returns `None` for holes or
    /// out-of-range addresses (runtime trap). This is the word-at-a-time
    /// reference path; the lane's hot loop uses [`Image::predecoded`].
    pub fn decode(&self, addr: u32) -> Option<DecodedBlock> {
        let w = *self.words.get(addr as usize)?;
        if w == HOLE {
            return None;
        }
        decode_word(w)
    }

    /// The predecoded record at `addr`; `None` agrees bit-for-bit with
    /// [`Image::decode`] returning `None` (hole, invalid word, or
    /// out-of-range).
    #[inline]
    pub fn predecoded(&self, addr: u32) -> Option<&PredecodedBlock> {
        self.predecoded.get(addr as usize)?.as_ref()
    }

    /// The compiled JIT artifact, when the encoder produced one.
    #[inline]
    pub fn jit(&self) -> Option<&crate::jit::LaneJit> {
        self.jit.as_deref()
    }
}

/// Encodes a validated, placed program into an executable image.
///
/// # Errors
/// [`UdpError::Encoding`] for field-range violations (address too large for
/// its encoding slot) or [`UdpError::Placement`] for an invalid placement.
pub fn encode(program: &Program, placement: &Placement) -> Result<Image, UdpError> {
    effclip::verify(program, placement)?;
    let mut words = vec![HOLE; placement.code_len];
    for (bid, block) in program.blocks.iter().enumerate() {
        let addr = placement.block_addr[bid] as usize;
        words[addr] = encode_word(block, placement)?;
    }
    let predecoded: Vec<Option<PredecodedBlock>> =
        words.iter().map(|&w| PredecodedBlock::from_word(w)).collect();
    let entry = placement.block_addr[program.entry as usize];
    // Lower the predecode table to native code before verification so the
    // verifier can audit the artifact's digests alongside the table itself.
    let jit = crate::jit::maybe_compile(&words, &predecoded, entry);
    let mut image = Image {
        name: program.name.clone(),
        words,
        entry,
        utilization: placement.utilization,
        verify_report: VerifyReport::empty(program.name.clone()),
        predecoded,
        jit,
    };
    image.verify_report =
        verify::verify_image(program, placement, &image, &VerifyConfig::default());
    Ok(image)
}

/// Convenience: place with EffCLiP then encode.
///
/// # Errors
/// Placement or encoding failures.
pub fn assemble(program: &Program) -> Result<Image, UdpError> {
    let placement = effclip::place(program)?;
    encode(program, &placement)
}

fn encode_word(block: &Block, placement: &Placement) -> Result<u128, UdpError> {
    block.validate()?;
    let mut w: u128 = 0;
    for (slot, action) in block.actions.iter().enumerate() {
        let bits = encode_action(*action)? as u128;
        w |= bits << (24 * slot);
    }
    let t = encode_transition(&block.transition, placement)? as u128;
    w |= t << 96;
    Ok(w)
}

fn encode_action(a: Action) -> Result<u32, UdpError> {
    a.validate()?;
    let r = |x: u8| x as u32;
    let enc = match a {
        Action::LoadImm { rd, imm } => {
            (op::LOAD_IMM << 19) | (r(rd) << 15) | ((imm as u32) & 0x7FFF)
        }
        Action::Mov { rd, rs } => (op::MOV << 19) | (r(rd) << 15) | (r(rs) << 11),
        Action::Add { rd, rs, rt } => {
            (op::ADD << 19) | (r(rd) << 15) | (r(rs) << 11) | (r(rt) << 7)
        }
        Action::Sub { rd, rs, rt } => {
            (op::SUB << 19) | (r(rd) << 15) | (r(rs) << 11) | (r(rt) << 7)
        }
        Action::And { rd, rs, rt } => {
            (op::AND << 19) | (r(rd) << 15) | (r(rs) << 11) | (r(rt) << 7)
        }
        Action::Or { rd, rs, rt } => (op::OR << 19) | (r(rd) << 15) | (r(rs) << 11) | (r(rt) << 7),
        Action::Xor { rd, rs, rt } => {
            (op::XOR << 19) | (r(rd) << 15) | (r(rs) << 11) | (r(rt) << 7)
        }
        Action::AddI { rd, rs, imm } => {
            (op::ADDI << 19) | (r(rd) << 15) | (r(rs) << 11) | ((imm as u32) & 0x7FF)
        }
        Action::ShlI { rd, rs, amount } => {
            (op::SHLI << 19) | (r(rd) << 15) | (r(rs) << 11) | ((amount as u32) << 5)
        }
        Action::ShrI { rd, rs, amount } => {
            (op::SHRI << 19) | (r(rd) << 15) | (r(rs) << 11) | ((amount as u32) << 5)
        }
        Action::Load { rd, base, offset, width } => {
            let o = match width {
                Width::B1 => op::LOAD_B,
                Width::B2 => op::LOAD_H,
                Width::B4 => op::LOAD_W,
                Width::B8 => op::LOAD_D,
            };
            (o << 19) | (r(rd) << 15) | (r(base) << 11) | ((offset as u32) & 0x7FF)
        }
        Action::Store { rs, base, offset, width } => {
            let o = match width {
                Width::B1 => op::STORE_B,
                Width::B2 => op::STORE_H,
                Width::B4 => op::STORE_W,
                Width::B8 => op::STORE_D,
            };
            (o << 19) | (r(rs) << 15) | (r(base) << 11) | ((offset as u32) & 0x7FF)
        }
        Action::LoadInc { rd, base, width } => {
            let o = match width {
                Width::B1 => op::LOAD_B_INC,
                Width::B2 => op::LOAD_H_INC,
                Width::B4 => op::LOAD_W_INC,
                Width::B8 => op::LOAD_D_INC,
            };
            (o << 19) | (r(rd) << 15) | (r(base) << 11)
        }
        Action::StoreInc { rs, base, width } => {
            let o = match width {
                Width::B1 => op::STORE_B_INC,
                // The 5-bit opcode space has no row left for a 2-byte
                // post-increment store; no decoder program needs one.
                Width::B2 => {
                    return Err(UdpError::Encoding("StoreInc does not support 2-byte width".into()))
                }
                Width::B4 => op::STORE_W_INC,
                Width::B8 => op::STORE_D_INC,
            };
            (o << 19) | (r(rs) << 15) | (r(base) << 11)
        }
        Action::InSym { rd, bits } => (op::IN_SYM << 19) | (r(rd) << 15) | ((bits as u32) << 9),
        Action::InSymLe { rd, bytes } => {
            (op::IN_SYM_LE << 19) | (r(rd) << 15) | ((bytes as u32) << 9)
        }
        Action::PeekSym { rd, bits } => (op::PEEK_SYM << 19) | (r(rd) << 15) | ((bits as u32) << 9),
        Action::SkipSym { bits } => (op::SKIP_SYM << 19) | ((bits as u32) << 13),
        Action::SkipReg { rs } => (op::SKIP_REG << 19) | (r(rs) << 15),
        Action::InRem { rd } => (op::IN_REM << 19) | (r(rd) << 15),
    };
    Ok(enc)
}

fn encode_transition(t: &Transition, placement: &Placement) -> Result<u32, UdpError> {
    let addr_of = |b: u32| placement.block_addr[b as usize];
    let base_of = |g: u32| placement.group_base[g as usize];
    let enc = match *t {
        Transition::Halt => tt::HALT << 29,
        Transition::Jump(b) => {
            let a = addr_of(b);
            if a >= (1 << 24) {
                return Err(UdpError::Encoding(format!("jump target address {a} exceeds 24 bits")));
            }
            (tt::JUMP << 29) | a
        }
        Transition::DispatchSym { bits, group } => {
            let base = base_of(group);
            if base >= (1 << 24) {
                return Err(UdpError::Encoding(format!("group base {base} exceeds 24 bits")));
            }
            (tt::DISPATCH_SYM << 29) | ((bits as u32) << 24) | base
        }
        Transition::DispatchPeek { bits, group } => {
            let base = base_of(group);
            if base >= (1 << 24) {
                return Err(UdpError::Encoding(format!("group base {base} exceeds 24 bits")));
            }
            (tt::DISPATCH_PEEK << 29) | ((bits as u32) << 24) | base
        }
        Transition::DispatchReg { rs, group } => {
            let base = base_of(group);
            if base >= (1 << 24) {
                return Err(UdpError::Encoding(format!("group base {base} exceeds 24 bits")));
            }
            (tt::DISPATCH_REG << 29) | ((rs as u32) << 24) | base
        }
        Transition::Branch { cond, rs, rt, taken, .. } => {
            let a = addr_of(taken);
            if a >= (1 << 18) {
                return Err(UdpError::Encoding(format!(
                    "branch target address {a} exceeds 18 bits"
                )));
            }
            (tt::BRANCH << 29)
                | ((cond as u32) << 26)
                | ((rs as u32) << 22)
                | ((rt as u32) << 18)
                | a
        }
    };
    Ok(enc)
}

/// Decodes one code word; `None` if any field is malformed.
pub fn decode_word(w: u128) -> Option<DecodedBlock> {
    let mut buf = [PAD_ACTION; 4];
    let (n, transition) = decode_word_into(w, &mut buf)?;
    Some(DecodedBlock { actions: buf[..n as usize].to_vec(), transition })
}

/// Non-allocating word decode: fills `out` with the occupied action slots
/// (compacted, in slot order) and returns their count plus the transition;
/// `None` if any field is malformed.
fn decode_word_into(w: u128, out: &mut [Action; 4]) -> Option<(u8, DecodedTransition)> {
    let mut n = 0u8;
    for slot in 0..4 {
        let bits = ((w >> (24 * slot)) & 0xFF_FFFF) as u32;
        if bits == 0 {
            continue;
        }
        out[n as usize] = decode_action(bits)?;
        n += 1;
    }
    let transition = decode_transition(((w >> 96) & 0xFFFF_FFFF) as u32)?;
    Some((n, transition))
}

fn sign_extend(v: u32, bits: u32) -> i16 {
    let shift = 32 - bits;
    (((v << shift) as i32) >> shift) as i16
}

fn decode_action(bits: u32) -> Option<Action> {
    let opcode = bits >> 19;
    let rd = ((bits >> 15) & 0xF) as u8;
    let rs = ((bits >> 11) & 0xF) as u8;
    let rt = ((bits >> 7) & 0xF) as u8;
    let imm15 = sign_extend(bits & 0x7FFF, 15);
    let imm11 = sign_extend(bits & 0x7FF, 11);
    let amount6 = ((bits >> 5) & 0x3F) as u8;
    let bits6 = ((bits >> 9) & 0x3F) as u8;
    let skip6 = ((bits >> 13) & 0x3F) as u8;
    let a = match opcode {
        op::LOAD_IMM => Action::LoadImm { rd, imm: imm15 },
        op::MOV => Action::Mov { rd, rs },
        op::ADD => Action::Add { rd, rs, rt },
        op::SUB => Action::Sub { rd, rs, rt },
        op::AND => Action::And { rd, rs, rt },
        op::OR => Action::Or { rd, rs, rt },
        op::XOR => Action::Xor { rd, rs, rt },
        op::ADDI => Action::AddI { rd, rs, imm: imm11 },
        op::SHLI => Action::ShlI { rd, rs, amount: amount6 },
        op::SHRI => Action::ShrI { rd, rs, amount: amount6 },
        op::LOAD_B => Action::Load { rd, base: rs, offset: imm11, width: Width::B1 },
        op::LOAD_H => Action::Load { rd, base: rs, offset: imm11, width: Width::B2 },
        op::LOAD_W => Action::Load { rd, base: rs, offset: imm11, width: Width::B4 },
        op::LOAD_D => Action::Load { rd, base: rs, offset: imm11, width: Width::B8 },
        op::STORE_B => Action::Store { rs: rd, base: rs, offset: imm11, width: Width::B1 },
        op::STORE_H => Action::Store { rs: rd, base: rs, offset: imm11, width: Width::B2 },
        op::STORE_W => Action::Store { rs: rd, base: rs, offset: imm11, width: Width::B4 },
        op::STORE_D => Action::Store { rs: rd, base: rs, offset: imm11, width: Width::B8 },
        op::IN_SYM => Action::InSym { rd, bits: bits6 },
        op::IN_SYM_LE => Action::InSymLe { rd, bytes: bits6 },
        op::PEEK_SYM => Action::PeekSym { rd, bits: bits6 },
        op::SKIP_SYM => Action::SkipSym { bits: skip6 },
        op::SKIP_REG => Action::SkipReg { rs: rd },
        op::IN_REM => Action::InRem { rd },
        op::LOAD_B_INC => Action::LoadInc { rd, base: rs, width: Width::B1 },
        op::LOAD_H_INC => Action::LoadInc { rd, base: rs, width: Width::B2 },
        op::LOAD_W_INC => Action::LoadInc { rd, base: rs, width: Width::B4 },
        op::LOAD_D_INC => Action::LoadInc { rd, base: rs, width: Width::B8 },
        op::STORE_B_INC => Action::StoreInc { rs: rd, base: rs, width: Width::B1 },
        op::STORE_W_INC => Action::StoreInc { rs: rd, base: rs, width: Width::B4 },
        op::STORE_D_INC => Action::StoreInc { rs: rd, base: rs, width: Width::B8 },
        _ => return None,
    };
    Some(a)
}

fn decode_cond(c: u32) -> Option<Cond> {
    Some(match c {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Ltu,
        3 => Cond::Geu,
        4 => Cond::Lts,
        5 => Cond::Ges,
        _ => return None,
    })
}

fn decode_transition(t: u32) -> Option<DecodedTransition> {
    let ty = t >> 29;
    Some(match ty {
        x if x == tt::HALT => DecodedTransition::Halt,
        x if x == tt::JUMP => DecodedTransition::Jump(t & 0xFF_FFFF),
        x if x == tt::DISPATCH_SYM => {
            DecodedTransition::DispatchSym { bits: ((t >> 24) & 0x1F) as u8, base: t & 0xFF_FFFF }
        }
        x if x == tt::DISPATCH_PEEK => {
            DecodedTransition::DispatchPeek { bits: ((t >> 24) & 0x1F) as u8, base: t & 0xFF_FFFF }
        }
        x if x == tt::DISPATCH_REG => {
            DecodedTransition::DispatchReg { rs: ((t >> 24) & 0xF) as u8, base: t & 0xFF_FFFF }
        }
        x if x == tt::BRANCH => DecodedTransition::Branch {
            cond: decode_cond((t >> 26) & 0x7)?,
            rs: ((t >> 22) & 0xF) as u8,
            rt: ((t >> 18) & 0xF) as u8,
            taken: t & 0x3_FFFF,
        },
        _ => return None,
    })
}

/// Renders one action in the assembler's mnemonic syntax.
fn action_mnemonic(a: Action) -> String {
    match a {
        Action::LoadImm { rd, imm } => format!("limm r{rd}, {imm}"),
        Action::Mov { rd, rs } => format!("mov r{rd}, r{rs}"),
        Action::Add { rd, rs, rt } => format!("add r{rd}, r{rs}, r{rt}"),
        Action::Sub { rd, rs, rt } => format!("sub r{rd}, r{rs}, r{rt}"),
        Action::And { rd, rs, rt } => format!("and r{rd}, r{rs}, r{rt}"),
        Action::Or { rd, rs, rt } => format!("or r{rd}, r{rs}, r{rt}"),
        Action::Xor { rd, rs, rt } => format!("xor r{rd}, r{rs}, r{rt}"),
        Action::AddI { rd, rs, imm } => format!("addi r{rd}, r{rs}, {imm}"),
        Action::ShlI { rd, rs, amount } => format!("shli r{rd}, r{rs}, {amount}"),
        Action::ShrI { rd, rs, amount } => format!("shri r{rd}, r{rs}, {amount}"),
        Action::Load { rd, base, offset, width } => {
            format!("load{} r{rd}, r{base}, {offset}", width_suffix(width))
        }
        Action::Store { rs, base, offset, width } => {
            format!("store{} r{rs}, r{base}, {offset}", width_suffix(width))
        }
        Action::LoadInc { rd, base, width } => {
            format!("load{}i r{rd}, r{base}", width_suffix(width))
        }
        Action::StoreInc { rs, base, width } => {
            format!("store{}i r{rs}, r{base}", width_suffix(width))
        }
        Action::InSym { rd, bits } => format!("insym r{rd}, {bits}"),
        Action::InSymLe { rd, bytes } => format!("insymle r{rd}, {bytes}"),
        Action::PeekSym { rd, bits } => format!("peek r{rd}, {bits}"),
        Action::SkipSym { bits } => format!("skip {bits}"),
        Action::SkipReg { rs } => format!("skipreg r{rs}"),
        Action::InRem { rd } => format!("inrem r{rd}"),
    }
}

fn width_suffix(w: Width) -> char {
    match w {
        Width::B1 => 'b',
        Width::B2 => 'h',
        Width::B4 => 'w',
        Width::B8 => 'd',
    }
}

fn cond_mnemonic(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "beq",
        Cond::Ne => "bne",
        Cond::Ltu => "bltu",
        Cond::Geu => "bgeu",
        Cond::Lts => "blts",
        Cond::Ges => "bges",
    }
}

impl Image {
    /// Disassembles the whole image as an address-annotated listing — the
    /// inspection tool a real accelerator toolchain ships with. Holes print
    /// as `--------`.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ =
            writeln!(out, "; {} — {} words, entry @{}", self.name, self.words.len(), self.entry);
        for (addr, &w) in self.words.iter().enumerate() {
            if w == HOLE {
                let _ = writeln!(out, "{addr:6}: --------");
                continue;
            }
            let Some(block) = decode_word(w) else {
                let _ = writeln!(out, "{addr:6}: <invalid word {w:#034x}>");
                continue;
            };
            let marker = if addr as u32 == self.entry { " <entry>" } else { "" };
            let _ = writeln!(out, "{addr:6}:{marker}");
            for a in &block.actions {
                let _ = writeln!(out, "        {}", action_mnemonic(*a));
            }
            let t = match block.transition {
                DecodedTransition::Halt => "halt".to_string(),
                DecodedTransition::Jump(a) => format!("jump @{a}"),
                DecodedTransition::DispatchSym { bits, base } => {
                    format!("dispatch.sym {bits}, @{base}+sym")
                }
                DecodedTransition::DispatchPeek { bits, base } => {
                    format!("dispatch.peek {bits}, @{base}+sym")
                }
                DecodedTransition::DispatchReg { rs, base } => {
                    format!("dispatch.reg r{rs}, @{base}+r{rs}")
                }
                DecodedTransition::Branch { cond, rs, rt, taken } => {
                    format!("{} r{rs}, r{rt}, @{taken} ; else @{}", cond_mnemonic(cond), addr + 1)
                }
            };
            let _ = writeln!(out, "        {t}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Block;
    use crate::program::ProgramBuilder;

    #[test]
    fn action_encode_decode_round_trip() {
        let actions = vec![
            Action::LoadImm { rd: 3, imm: -100 },
            Action::LoadImm { rd: 3, imm: 16383 },
            Action::Mov { rd: 1, rs: 15 },
            Action::Add { rd: 1, rs: 2, rt: 3 },
            Action::Sub { rd: 15, rs: 0, rt: 7 },
            Action::And { rd: 4, rs: 5, rt: 6 },
            Action::Or { rd: 4, rs: 5, rt: 6 },
            Action::Xor { rd: 4, rs: 5, rt: 6 },
            Action::AddI { rd: 2, rs: 2, imm: -1 },
            Action::AddI { rd: 2, rs: 2, imm: 1023 },
            Action::ShlI { rd: 9, rs: 9, amount: 63 },
            Action::ShrI { rd: 9, rs: 9, amount: 1 },
            Action::Load { rd: 5, base: 6, offset: -3, width: Width::B4 },
            Action::Load { rd: 5, base: 6, offset: 7, width: Width::B8 },
            Action::InSym { rd: 7, bits: 32 },
            Action::InSymLe { rd: 7, bytes: 8 },
            Action::PeekSym { rd: 7, bits: 15 },
            Action::SkipSym { bits: 9 },
            Action::SkipReg { rs: 11 },
            Action::InRem { rd: 12 },
        ];
        for a in actions {
            let enc = encode_action(a).unwrap();
            let dec = decode_action(enc).unwrap();
            assert_eq!(dec, a, "encoding {enc:#08x}");
        }
    }

    #[test]
    fn store_encode_decode_round_trip() {
        // Store aliases rs into the rd slot; verify each width separately.
        for width in [Width::B1, Width::B2, Width::B4, Width::B8] {
            let a = Action::Store { rs: 9, base: 9, offset: 11, width };
            let dec = decode_action(encode_action(a).unwrap()).unwrap();
            match dec {
                Action::Store { rs, offset, width: w, .. } => {
                    assert_eq!((rs, offset, w), (9, 11, width));
                }
                other => panic!("decoded {other:?}"),
            }
        }
    }

    #[test]
    fn whole_program_round_trips_through_binary() {
        let mut pb = ProgramBuilder::new("roundtrip");
        let done = pb.block(Block { actions: vec![], transition: Transition::Halt });
        let members: Vec<_> = (0..4)
            .map(|i| {
                pb.block(Block {
                    actions: vec![Action::LoadImm { rd: 1, imm: i }],
                    transition: Transition::Jump(done),
                })
            })
            .collect();
        let g = pb.group(members.iter().enumerate().map(|(i, &b)| (i as u32, b)).collect());
        let start = pb.block(Block {
            actions: vec![Action::InRem { rd: 2 }],
            transition: Transition::DispatchSym { bits: 2, group: g },
        });
        pb.entry(start);
        let p = pb.build().unwrap();
        let image = assemble(&p).unwrap();

        // Every placed block decodes back to its logical content.
        let placement = crate::effclip::place(&p).unwrap();
        for (bid, block) in p.blocks.iter().enumerate() {
            let dec = image.decode(placement.block_addr[bid]).expect("placed block decodes");
            assert_eq!(dec.actions, block.actions, "block {bid}");
        }
        // Entry resolves.
        assert!(image.decode(image.entry).is_some());
    }

    #[test]
    fn holes_decode_to_none() {
        let mut pb = ProgramBuilder::new("holey");
        let m = pb.block(Block { actions: vec![], transition: Transition::Halt });
        // Sparse group: offsets 0 and 5 leave holes at 1..5 until singletons
        // fill them — here there are no other blocks except entry, so at
        // least some holes remain.
        let m2 = pb.block(Block { actions: vec![], transition: Transition::Halt });
        let g = pb.group(vec![(0, m), (5, m2)]);
        let start = pb.block(Block {
            actions: vec![],
            transition: Transition::DispatchSym { bits: 3, group: g },
        });
        pb.entry(start);
        let p = pb.build().unwrap();
        let image = assemble(&p).unwrap();
        let holes = image.words.iter().filter(|&&w| w == HOLE).count();
        assert!(holes > 0);
        let hole_addr = image.words.iter().position(|&w| w == HOLE).unwrap();
        assert!(image.decode(hole_addr as u32).is_none());
        assert!(image.decode(10_000).is_none());
    }

    #[test]
    fn disassembly_lists_every_placed_block() {
        let image = crate::progs::delta::build().unwrap();
        let text = image.disassemble();
        assert!(text.contains("insymle r4, 4"), "{text}");
        assert!(text.contains("storewi r1, r2"));
        assert!(text.contains("halt"));
        assert!(text.contains("<entry>"));
        // One address line per word.
        assert_eq!(text.lines().filter(|l| l.contains(':')).count(), image.words.len());
    }

    #[test]
    fn garbage_words_decode_to_none_or_valid() {
        // Fuzz the decoder: must never panic.
        let mut x = 0xDEADBEEFu128;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let _ = decode_word(x);
        }
    }
}
