//! # recode-udp — cycle-level simulator of the UDP recoding accelerator
//!
//! The Unstructured Data Processor (Fang et al., MICRO'17) is the paper's
//! enabling substrate: a 64-lane MIMD accelerator whose lanes excel at
//! branch-intensive recoding via **multi-way dispatch** (next code address =
//! `base + symbol`, one cycle, no prediction). This crate rebuilds the whole
//! stack in Rust:
//!
//! * [`isa`] — code blocks, actions, transitions (16×64-bit registers,
//!   64 KB scratchpad, bit-granular stream unit);
//! * [`program`] — symbolic programs and a builder API;
//! * [`asm`] — a textual assembler, because the UDP's selling point is
//!   *software* programmability;
//! * [`effclip`] — the EffCLiP coupled-linear-packing placer that makes
//!   `base + symbol` a perfect hash into dense code memory;
//! * [`machine`] — 128-bit code-word encoding (4 action slots + transition)
//!   and the executable [`machine::Image`];
//! * [`lane`] — the lane interpreter with the paper's cycle model
//!   (1 cycle/dispatch, 1 cycle/action);
//! * [`jit`] — the native x86-64 tier: predecoded blocks lowered to
//!   machine code in W^X pages at assemble time, bit-exact with the
//!   interpreter (which stays the portable fallback — `RECODE_NO_JIT=1`);
//! * [`pool`] — process-wide lane recycling so hot paths stop allocating
//!   64 KB scratchpads;
//! * [`accel`] — the 64-lane accelerator: MIMD block scheduling, makespan,
//!   throughput and energy (1.6 GHz, 160 mW at 14 nm);
//! * [`progs`] — real UDP programs for the paper's pipeline: inverse delta,
//!   Snappy decode (256-way tag dispatch), and per-matrix compiled Huffman
//!   decoders (two-level peek dispatch), each validated bit-for-bit against
//!   `recode-codec`'s software encoders;
//! * [`error`] — the typed [`error::UdpError`] hierarchy every public API
//!   reports through, carrying block-index and lane-id context;
//! * [`verify`] — the static verifier (CFG reachability, must-initialize
//!   dataflow, interval analysis of scratchpad addresses, termination /
//!   cycle-budget checks, dispatch-table validation) that gates every
//!   program before it reaches a lane.

pub mod accel;
pub mod asm;
pub mod effclip;
pub mod energy;
pub mod error;
pub mod isa;
pub mod jit;
pub mod lane;
pub mod machine;
pub mod pool;
pub mod program;
pub mod progs;
pub mod verify;

pub use accel::{
    lane_utilization, panic_payload_message, AccelReport, Accelerator, BatchOutcome, FaultHook,
    JobEvent, JobEventSink, JobOutcome, LaneProfile, StageCycles,
};
pub use error::{UdpError, UdpResult};
pub use jit::LaneJit;
pub use lane::{Lane, LaneError, LaneHealth, OpClassCycles, RunConfig, RunResult, RunStats};
pub use machine::Image;
pub use pool::{
    set_event_hook, LanePool, PoolConfig, PoolEvent, PoolStats, PooledLane, DEFAULT_POOL_CAPACITY,
};
pub use program::{Program, ProgramBuilder};
pub use verify::{
    verify_image, verify_program, Analysis, CycleBound, Finding, LoopSummary, MaxBound, Severity,
    VerifyConfig, VerifyReport,
};
