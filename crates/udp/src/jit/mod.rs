//! JIT lowering of predecoded lane programs to native x86-64.
//!
//! At assemble time every verified [`Image`](crate::machine::Image) gets
//! its `PredecodedBlock` table compiled to straight-line machine code per
//! block, with branch-stitched control flow between blocks and the stream
//! unit's hot paths (read/peek/skip of a buffered symbol) inlined. The
//! pages live in the W^X-managed `ExecBuf` from `recode-codec`.
//!
//! ## The bail-and-rerun contract
//!
//! Compiled code handles the *success* path exactly: architectural state
//! (registers, scratchpad, stream position, `dirty_hi`), modeled cycles,
//! dispatch/action counts, and opclass attribution are all byte-identical
//! to the interpreter's. On **any** abnormal condition — a trap
//! precondition (scratchpad bounds, stream underflow, unmapped dispatch),
//! the cycle budget, or a dispatch into a hole — the code sets
//! `status = 1` and returns through one shared bail stub. The caller then
//! re-runs the interpreter from a fresh prologue; lane execution is
//! deterministic, so the re-run reproduces the exact [`LaneError`] with
//! exact payloads. The compiled code never fabricates an error value,
//! which keeps the lowering small and makes trap equivalence trivially
//! total: every divergent case is, by construction, the interpreter's own
//! answer.
//!
//! Mid-block bails discard the JIT's partial accounting with the rest of
//! the run, so per-block accounting can be charged as whole-block
//! constants at block entry — the same order the interpreter uses
//! (full block cost lands on the meter before the budget check).
//!
//! ## Integrity
//!
//! The artifact pins itself to its inputs with FNV digests: `code_digest`
//! over the published machine code and `words_digest` over the image's
//! code words. `verify_image` re-checks both (a mismatch is an `Error`
//! finding under `Analysis::TranslationValidation`), and every run does a
//! cheap sentinel check (first/last 8 bytes + length) that gates
//! `Lane::run` with [`LaneError::JitInvalid`](crate::lane::LaneError) on
//! damage.

use crate::isa::{Action, SCRATCHPAD_BYTES};
use crate::lane::{jit_stream_peek, jit_stream_read, jit_stream_read_le, jit_stream_skip};
use crate::machine::{DecodedTransition, PredecodedBlock};
use recode_codec::jit::asm::reg::{R12, R13, R14, R15, RAX, RBX, RCX, RDI, RDX, RSI};
use recode_codec::jit::asm::{Alu, Asm, Cc, Mem, Reg};
use recode_codec::jit::{fnv1a, fnv1a_words, ExecBuf, JitError};
use std::mem::offset_of;

/// In/out state for one compiled lane run. The emitted code addresses
/// fields by `offset_of`, so the layout must stay `repr(C)`.
#[repr(C)]
pub struct JitState {
    /// Lane register file (16 × u64; `r0` writes are suppressed at emit
    /// time, mirroring the hardwired zero).
    pub(crate) regs: *mut u64,
    /// Scratchpad base (64 KB).
    pub(crate) scratch: *mut u8,
    /// Dispatch table: absolute compiled-entry address per image address,
    /// 0 for holes/invalid words.
    pub(crate) table: *const usize,
    /// Entries in `table` (= image words).
    pub(crate) table_len: u64,
    /// Input stream base.
    pub(crate) in_ptr: *const u8,
    /// Input buffer length in bytes.
    pub(crate) in_len: u64,
    /// Valid bits in the stream.
    pub(crate) bit_len: u64,
    /// Stream cursor (next unconsumed bit).
    pub(crate) pos: u64,
    /// MSB-aligned refill buffer (same invariants as `StreamUnit`).
    pub(crate) buf: u64,
    /// Valid bits in `buf`.
    pub(crate) buf_bits: u64,
    /// Modeled cycles.
    pub(crate) cycles: u64,
    /// Block dispatches.
    pub(crate) dispatches: u64,
    /// Actions executed.
    pub(crate) actions: u64,
    /// Opclass attribution: dispatch cycles.
    pub(crate) oc_dispatch: u64,
    /// Opclass attribution: ALU cycles.
    pub(crate) oc_alu: u64,
    /// Opclass attribution: memory cycles.
    pub(crate) oc_mem: u64,
    /// Opclass attribution: stream cycles.
    pub(crate) oc_stream: u64,
    /// Trap after this many cycles.
    pub(crate) cycle_limit: u64,
    /// Scratchpad dirty high-water mark (read back by the lane).
    pub(crate) dirty_hi: u64,
    /// 0 = clean halt, 1 = bail (re-run the interpreter).
    pub(crate) status: u64,
}

#[allow(clippy::cast_possible_truncation)]
fn st(off: usize) -> Mem {
    Mem::base(RBX, off as i32)
}

/// All slow-path helpers share one shape; going through the fn-pointer type
/// (rather than casting the fn item directly) also type-checks each helper's
/// signature against what the emitted call sequence assumes.
type Helper = unsafe extern "C" fn(*mut JitState, u64) -> u64;

fn helper_addr(h: Helper) -> usize {
    h as usize
}

/// Which accounting class an action bills to (mirrors
/// `OpClassCycles::bump`).
enum Class {
    Alu,
    Mem,
    Stream,
}

fn classify(a: Action) -> Class {
    match a {
        Action::LoadImm { .. }
        | Action::Mov { .. }
        | Action::Add { .. }
        | Action::Sub { .. }
        | Action::And { .. }
        | Action::Or { .. }
        | Action::Xor { .. }
        | Action::AddI { .. }
        | Action::ShlI { .. }
        | Action::ShrI { .. } => Class::Alu,
        Action::Load { .. }
        | Action::Store { .. }
        | Action::LoadInc { .. }
        | Action::StoreInc { .. } => Class::Mem,
        Action::InSym { .. }
        | Action::InSymLe { .. }
        | Action::PeekSym { .. }
        | Action::SkipSym { .. }
        | Action::SkipReg { .. }
        | Action::InRem { .. } => Class::Stream,
    }
}

/// The lowering pass: one `Asm` buffer, per-block offsets, and the fixup
/// lists resolved after all blocks are emitted.
struct Lower {
    a: Asm,
    /// `(rel32 field, target image address)` — resolved to the target's
    /// compiled entry, or to the bail stub when unmapped.
    fixups: Vec<(usize, u32)>,
    /// rel32 fields aimed at the shared bail stub.
    bail: Vec<usize>,
    /// rel32 fields aimed at the epilogue (clean halts).
    halt: Vec<usize>,
    /// Image address → compiled code offset.
    block_off: Vec<Option<usize>>,
}

impl Lower {
    fn read_reg(&mut self, dst: Reg, r: u8) {
        if r == 0 {
            self.a.zero(dst);
        } else {
            self.a.load(dst, Mem::base(R12, i32::from(r) * 8));
        }
    }

    fn write_reg(&mut self, r: u8, src: Reg) {
        if r != 0 {
            self.a.store(Mem::base(R12, i32::from(r) * 8), src);
        }
    }

    /// `rdi = state; rsi = arg; call helper`. Trap-capable helpers set
    /// `status`, checked here and routed to the bail stub.
    fn call_helper(&mut self, helper: usize, arg: Option<u64>, can_trap: bool) {
        self.a.mov_rr(RDI, RBX);
        if let Some(v) = arg {
            self.a.mov_ri(RSI, v);
        }
        self.a.call_abs(helper);
        if can_trap {
            self.a.alu_mi(Alu::Cmp, st(offset_of!(JitState, status)), 0);
            self.bail.push(self.a.jcc_rel32(Cc::Ne));
        }
    }

    /// Inline `stream.read(n)` for `1..=57` bits: serve from the buffer
    /// when it holds *more* than `n` bits (the strict inequality both
    /// guarantees `n <= remaining` — the buffer never holds invalid bits —
    /// and keeps the shift-advance exact); otherwise the scalar helper
    /// runs the full refill/underflow logic. Value lands in RAX.
    fn stream_read_fast(&mut self, n: u8) {
        debug_assert!((1..=57).contains(&n));
        self.a.load(RAX, st(offset_of!(JitState, buf_bits)));
        self.a.alu_ri(Alu::Cmp, RAX, i32::from(n));
        let slow = self.a.jcc_rel32(Cc::Be);
        self.a.load(RDX, st(offset_of!(JitState, buf)));
        self.a.mov_rr(RCX, RDX);
        self.a.shr_ri(RCX, 64 - n);
        self.a.shl_ri(RDX, n);
        self.a.store(st(offset_of!(JitState, buf)), RDX);
        self.a.alu_ri(Alu::Sub, RAX, i32::from(n));
        self.a.store(st(offset_of!(JitState, buf_bits)), RAX);
        self.a.alu_mi(Alu::Add, st(offset_of!(JitState, pos)), i32::from(n));
        self.a.mov_rr(RAX, RCX);
        let done = self.a.jmp_rel32();
        let slow_at = self.a.here();
        self.a.patch_rel32(slow, slow_at);
        self.call_helper(helper_addr(jit_stream_read), Some(u64::from(n)), true);
        let done_at = self.a.here();
        self.a.patch_rel32(done, done_at);
    }

    /// Inline `stream.peek(n)` for `1..=57` bits (never traps, never
    /// consumes). Value lands in RAX.
    fn stream_peek_fast(&mut self, n: u8) {
        debug_assert!((1..=57).contains(&n));
        self.a.load(RAX, st(offset_of!(JitState, buf_bits)));
        self.a.alu_ri(Alu::Cmp, RAX, i32::from(n));
        let slow = self.a.jcc_rel32(Cc::B);
        self.a.load(RAX, st(offset_of!(JitState, buf)));
        self.a.shr_ri(RAX, 64 - n);
        let done = self.a.jmp_rel32();
        let slow_at = self.a.here();
        self.a.patch_rel32(slow, slow_at);
        self.call_helper(helper_addr(jit_stream_peek), Some(u64::from(n)), false);
        let done_at = self.a.here();
        self.a.patch_rel32(done, done_at);
    }

    /// Inline `stream.skip(n)` for small constant `n`.
    fn stream_skip_fast(&mut self, n: u8) {
        debug_assert!((1..=57).contains(&n));
        self.a.load(RAX, st(offset_of!(JitState, buf_bits)));
        self.a.alu_ri(Alu::Cmp, RAX, i32::from(n));
        let slow = self.a.jcc_rel32(Cc::Be);
        self.a.load(RDX, st(offset_of!(JitState, buf)));
        self.a.shl_ri(RDX, n);
        self.a.store(st(offset_of!(JitState, buf)), RDX);
        self.a.alu_ri(Alu::Sub, RAX, i32::from(n));
        self.a.store(st(offset_of!(JitState, buf_bits)), RAX);
        self.a.alu_mi(Alu::Add, st(offset_of!(JitState, pos)), i32::from(n));
        let done = self.a.jmp_rel32();
        let slow_at = self.a.here();
        self.a.patch_rel32(slow, slow_at);
        self.call_helper(helper_addr(jit_stream_skip), Some(u64::from(n)), true);
        let done_at = self.a.here();
        self.a.patch_rel32(done, done_at);
    }

    /// Emits the effective-address computation + bounds check for a
    /// scratchpad access: RAX = `reg(base) + offset`, bailing unless
    /// `addr <= SCRATCHPAD_BYTES - width` (the one unsigned compare that
    /// covers both the negative and past-the-end interpreter traps).
    #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
    fn mem_address(&mut self, base: u8, offset: i16, width: usize) {
        self.read_reg(RAX, base);
        if offset != 0 {
            self.a.alu_ri(Alu::Add, RAX, i32::from(offset));
        }
        self.a.alu_ri(Alu::Cmp, RAX, (SCRATCHPAD_BYTES - width) as i32);
        self.bail.push(self.a.jcc_rel32(Cc::A));
    }

    /// `dirty_hi = max(dirty_hi, RAX + width)`, leaving `RAX + width` in
    /// RCX for post-increment reuse.
    #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
    fn update_dirty_hi(&mut self, width: usize) {
        self.a.lea(RCX, Mem::base(RAX, width as i32));
        self.a.alu_rm(Alu::Cmp, RCX, st(offset_of!(JitState, dirty_hi)));
        let skip = self.a.jcc_rel32(Cc::Be);
        self.a.store(st(offset_of!(JitState, dirty_hi)), RCX);
        let at = self.a.here();
        self.a.patch_rel32(skip, at);
    }

    fn scratch_load(&mut self, dst: Reg, width: usize) {
        let m = Mem::index(R13, RAX, 0, 0);
        match width {
            1 => self.a.load8_zx(dst, m),
            2 => self.a.load16_zx(dst, m),
            4 => self.a.load32(dst, m),
            _ => self.a.load(dst, m),
        }
    }

    fn scratch_store(&mut self, src: Reg, width: usize) {
        let m = Mem::index(R13, RAX, 0, 0);
        match width {
            1 => self.a.store8(m, src),
            2 => self.a.store16(m, src),
            4 => self.a.store32(m, src),
            _ => self.a.store(m, src),
        }
    }

    fn alu3(&mut self, op: Alu, rd: u8, rs: u8, rt: u8) {
        self.read_reg(RAX, rs);
        self.read_reg(RDX, rt);
        self.a.alu_rr(op, RAX, RDX);
        self.write_reg(rd, RAX);
    }

    #[allow(clippy::cast_possible_wrap, clippy::cast_sign_loss)]
    fn emit_action(&mut self, act: Action) {
        match act {
            Action::LoadImm { rd, imm } => {
                self.a.mov_ri(RAX, imm as i64 as u64);
                self.write_reg(rd, RAX);
            }
            Action::Mov { rd, rs } => {
                self.read_reg(RAX, rs);
                self.write_reg(rd, RAX);
            }
            Action::Add { rd, rs, rt } => self.alu3(Alu::Add, rd, rs, rt),
            Action::Sub { rd, rs, rt } => self.alu3(Alu::Sub, rd, rs, rt),
            Action::And { rd, rs, rt } => self.alu3(Alu::And, rd, rs, rt),
            Action::Or { rd, rs, rt } => self.alu3(Alu::Or, rd, rs, rt),
            Action::Xor { rd, rs, rt } => self.alu3(Alu::Xor, rd, rs, rt),
            Action::AddI { rd, rs, imm } => {
                self.read_reg(RAX, rs);
                if imm != 0 {
                    self.a.alu_ri(Alu::Add, RAX, i32::from(imm));
                }
                self.write_reg(rd, RAX);
            }
            Action::ShlI { rd, rs, amount } => {
                if amount >= 64 {
                    self.a.zero(RAX);
                } else {
                    self.read_reg(RAX, rs);
                    if amount > 0 {
                        self.a.shl_ri(RAX, amount);
                    }
                }
                self.write_reg(rd, RAX);
            }
            Action::ShrI { rd, rs, amount } => {
                if amount >= 64 {
                    self.a.zero(RAX);
                } else {
                    self.read_reg(RAX, rs);
                    if amount > 0 {
                        self.a.shr_ri(RAX, amount);
                    }
                }
                self.write_reg(rd, RAX);
            }
            Action::Load { rd, base, offset, width } => {
                let w = width.bytes();
                self.mem_address(base, offset, w);
                self.scratch_load(RDX, w);
                self.write_reg(rd, RDX);
            }
            Action::Store { rs, base, offset, width } => {
                let w = width.bytes();
                self.mem_address(base, offset, w);
                self.read_reg(RDX, rs);
                self.scratch_store(RDX, w);
                self.update_dirty_hi(w);
            }
            Action::LoadInc { rd, base, width } => {
                let w = width.bytes();
                self.mem_address(base, 0, w);
                self.scratch_load(RDX, w);
                // Base increment before the destination write, so
                // `rd == base` keeps the loaded value (interpreter order).
                self.a.lea(RCX, Mem::base(RAX, w as i32));
                self.write_reg(base, RCX);
                self.write_reg(rd, RDX);
            }
            Action::StoreInc { rs, base, width } => {
                let w = width.bytes();
                self.mem_address(base, 0, w);
                self.read_reg(RDX, rs);
                self.scratch_store(RDX, w);
                self.update_dirty_hi(w); // leaves RAX + w in RCX
                self.write_reg(base, RCX);
            }
            Action::InSym { rd, bits } => {
                self.stream_value(bits, helper_addr(jit_stream_read), true);
                self.write_reg(rd, RAX);
            }
            Action::InSymLe { rd, bytes } => {
                self.call_helper(helper_addr(jit_stream_read_le), Some(u64::from(bytes)), true);
                self.write_reg(rd, RAX);
            }
            Action::PeekSym { rd, bits } => {
                self.stream_value(bits, helper_addr(jit_stream_peek), false);
                self.write_reg(rd, RAX);
            }
            Action::SkipSym { bits } => {
                if bits == 0 {
                    // skip(0) never traps and moves nothing observable.
                } else if bits <= 57 {
                    self.stream_skip_fast(bits);
                } else {
                    self.call_helper(helper_addr(jit_stream_skip), Some(u64::from(bits)), true);
                }
            }
            Action::SkipReg { rs } => {
                self.read_reg(RSI, rs);
                self.call_helper(helper_addr(jit_stream_skip), None, true);
            }
            Action::InRem { rd } => {
                self.a.load(RAX, st(offset_of!(JitState, bit_len)));
                self.a.alu_rm(Alu::Sub, RAX, st(offset_of!(JitState, pos)));
                self.write_reg(rd, RAX);
            }
        }
    }

    /// Stream read/peek dispatcher: zero bits → constant 0; 1..=57 bits →
    /// inline fast path; oversized (garbage encodings) → helper.
    fn stream_value(&mut self, bits: u8, helper: usize, consumes: bool) {
        if bits == 0 {
            self.a.zero(RAX);
        } else if bits <= 57 {
            if consumes {
                self.stream_read_fast(bits);
            } else {
                self.stream_peek_fast(bits);
            }
        } else {
            self.call_helper(helper, Some(u64::from(bits)), consumes);
        }
    }

    fn jump_to(&mut self, target: u32) {
        let j = self.a.jmp_rel32();
        self.fixups.push((j, target));
    }

    /// Indirect dispatch: RAX holds the symbol/index value; the target is
    /// `base +₃₂ value`, resolved through the run-time table so the code
    /// stays position-independent and holes trap.
    #[allow(clippy::cast_possible_wrap)]
    fn dynamic_dispatch(&mut self, base: u32) {
        self.a.mov32_rr(RCX, RAX);
        if base != 0 {
            self.a.alu32_ri(Alu::Add, RCX, base as i32);
        }
        self.a.alu_rm(Alu::Cmp, RCX, st(offset_of!(JitState, table_len)));
        self.bail.push(self.a.jcc_rel32(Cc::Ae));
        self.a.load(RDX, Mem::index(R14, RCX, 3, 0));
        self.a.test_rr(RDX, RDX);
        self.bail.push(self.a.jcc_rel32(Cc::E));
        self.a.jmp_r(RDX);
    }

    #[allow(clippy::cast_possible_truncation)]
    fn emit_block(&mut self, addr: u32, blk: &PredecodedBlock) {
        self.block_off[addr as usize] = Some(self.a.here());
        let n = blk.actions().len() as u64;
        let (mut n_alu, mut n_mem, mut n_str) = (0i32, 0i32, 0i32);
        for act in blk.actions() {
            match classify(*act) {
                Class::Alu => n_alu += 1,
                Class::Mem => n_mem += 1,
                Class::Stream => n_str += 1,
            }
        }
        // Whole-block accounting up front (interpreter order: the block's
        // full cost lands before the budget check; a mid-block bail
        // discards it all anyway).
        self.a.alu_mi(Alu::Add, st(offset_of!(JitState, cycles)), 1 + n as i32);
        self.a.inc_m(st(offset_of!(JitState, dispatches)));
        if n > 0 {
            self.a.alu_mi(Alu::Add, st(offset_of!(JitState, actions)), n as i32);
        }
        self.a.inc_m(st(offset_of!(JitState, oc_dispatch)));
        if n_alu > 0 {
            self.a.alu_mi(Alu::Add, st(offset_of!(JitState, oc_alu)), n_alu);
        }
        if n_mem > 0 {
            self.a.alu_mi(Alu::Add, st(offset_of!(JitState, oc_mem)), n_mem);
        }
        if n_str > 0 {
            self.a.alu_mi(Alu::Add, st(offset_of!(JitState, oc_stream)), n_str);
        }
        self.a.load(RAX, st(offset_of!(JitState, cycles)));
        self.a.alu_rm(Alu::Cmp, RAX, st(offset_of!(JitState, cycle_limit)));
        self.bail.push(self.a.jcc_rel32(Cc::A));

        for act in blk.actions() {
            self.emit_action(*act);
        }

        match blk.transition {
            DecodedTransition::Halt => {
                self.halt.push(self.a.jmp_rel32());
            }
            DecodedTransition::Jump(t) => self.jump_to(t),
            DecodedTransition::Branch { cond, rs, rt, taken } => {
                self.read_reg(RAX, rs);
                self.read_reg(RDX, rt);
                self.a.alu_rr(Alu::Cmp, RAX, RDX);
                let cc = match cond {
                    crate::isa::Cond::Eq => Cc::E,
                    crate::isa::Cond::Ne => Cc::Ne,
                    crate::isa::Cond::Ltu => Cc::B,
                    crate::isa::Cond::Geu => Cc::Ae,
                    crate::isa::Cond::Lts => Cc::L,
                    crate::isa::Cond::Ges => Cc::Ge,
                };
                let j = self.a.jcc_rel32(cc);
                self.fixups.push((j, taken));
                self.jump_to(addr + 1);
            }
            DecodedTransition::DispatchSym { bits, base } => {
                self.stream_value(bits, helper_addr(jit_stream_read), true);
                self.dynamic_dispatch(base);
            }
            DecodedTransition::DispatchPeek { bits, base } => {
                self.stream_value(bits, helper_addr(jit_stream_peek), false);
                self.dynamic_dispatch(base);
            }
            DecodedTransition::DispatchReg { rs, base } => {
                self.read_reg(RAX, rs);
                self.dynamic_dispatch(base);
            }
        }
    }
}

/// A published lane-program JIT artifact.
#[derive(Debug)]
pub struct LaneJit {
    buf: ExecBuf,
    /// Absolute compiled-entry address per image address (0 = unmapped).
    table: Vec<usize>,
    /// FNV-1a over the published machine code.
    code_digest: u64,
    /// FNV-1a over the image words the artifact was lowered from.
    words_digest: u64,
    /// Sentinels for the cheap per-run integrity check.
    code_len: usize,
    first8: u64,
    last8: u64,
    /// Blocks lowered (compiled dispatch targets).
    blocks: usize,
}

/// Artifact identity is its digest pair: equal digests ⇔ compiled from
/// the same words into the same code.
impl PartialEq for LaneJit {
    fn eq(&self, other: &Self) -> bool {
        self.code_digest == other.code_digest && self.words_digest == other.words_digest
    }
}

impl LaneJit {
    /// Lowers a predecoded image to machine code and publishes it.
    ///
    /// # Errors
    /// [`JitError`] when lowering or page publication fails; callers fall
    /// back to the interpreter tier.
    pub(crate) fn compile(
        words: &[u128],
        predecoded: &[Option<PredecodedBlock>],
        entry: u32,
    ) -> Result<LaneJit, JitError> {
        let mut lo = Lower {
            a: Asm::new(),
            fixups: Vec::new(),
            bail: Vec::new(),
            halt: Vec::new(),
            block_off: vec![None; predecoded.len()],
        };
        // Prologue: 5 callee-saved pushes leave RSP 16-aligned, so helper
        // call sites see the ABI-mandated alignment with no padding.
        for r in [RBX, R12, R13, R14, R15] {
            lo.a.push(r);
        }
        lo.a.mov_rr(RBX, RDI);
        lo.a.load(R12, st(offset_of!(JitState, regs)));
        lo.a.load(R13, st(offset_of!(JitState, scratch)));
        lo.a.load(R14, st(offset_of!(JitState, table)));
        lo.jump_to(entry);

        let mut blocks = 0usize;
        for (addr, blk) in predecoded.iter().enumerate() {
            if let Some(blk) = blk {
                #[allow(clippy::cast_possible_truncation)]
                lo.emit_block(addr as u32, blk);
                blocks += 1;
            }
        }

        let bail_at = lo.a.here();
        lo.a.store_imm(st(offset_of!(JitState, status)), 1);
        let epilogue_at = lo.a.here();
        for r in [R15, R14, R13, R12, RBX] {
            lo.a.pop(r);
        }
        lo.a.ret();

        for off in lo.bail {
            lo.a.patch_rel32(off, bail_at);
        }
        for off in lo.halt {
            lo.a.patch_rel32(off, epilogue_at);
        }
        for (off, target) in lo.fixups {
            let dest = lo.block_off.get(target as usize).copied().flatten().unwrap_or(bail_at);
            lo.a.patch_rel32(off, dest);
        }

        let code = lo.a.into_bytes();
        let buf = ExecBuf::publish(&code)?;
        let published = buf.code();
        let table = lo.block_off.iter().map(|off| off.map_or(0, |o| buf.addr_of(o))).collect();
        Ok(LaneJit {
            code_digest: fnv1a(published),
            words_digest: fnv1a_words(words),
            code_len: published.len(),
            first8: u64::from_le_bytes(published[..8].try_into().expect("prologue > 8 bytes")),
            last8: u64::from_le_bytes(
                published[published.len() - 8..].try_into().expect("epilogue > 8 bytes"),
            ),
            blocks,
            table,
            buf,
        })
    }

    /// Machine-code bytes published.
    pub fn code_bytes(&self) -> usize {
        self.code_len
    }

    /// Blocks lowered to native code.
    pub fn blocks_lowered(&self) -> usize {
        self.blocks
    }

    /// Cheap per-run integrity check: length + first/last 8 code bytes.
    /// The full digest check lives in `verify_image`.
    pub(crate) fn quick_check(&self) -> bool {
        let code = self.buf.code();
        code.len() == self.code_len
            && code.len() >= 16
            && u64::from_le_bytes(code[..8].try_into().expect("len checked")) == self.first8
            && u64::from_le_bytes(code[code.len() - 8..].try_into().expect("len checked"))
                == self.last8
    }

    /// Full integrity audit for `verify_image`: recomputes both digests.
    /// Returns one message per violated pin (empty = intact).
    pub fn integrity_errors(&self, words: &[u128]) -> Vec<String> {
        let mut out = Vec::new();
        if fnv1a(self.buf.code()) != self.code_digest {
            out.push(
                "JIT artifact failed translation validation: published machine code \
                 does not match the digest recorded at compile time (tampered buffer)"
                    .to_string(),
            );
        }
        if fnv1a_words(words) != self.words_digest {
            out.push(
                "JIT artifact failed translation validation: image words changed after \
                 the artifact was compiled (stale buffer)"
                    .to_string(),
            );
        }
        out
    }

    /// The dispatch-table pointer/length for seeding a [`JitState`].
    pub(crate) fn table(&self) -> (&[usize], u64) {
        (&self.table, self.table.len() as u64)
    }

    /// Test-only tamper hook (see `ExecBuf::corrupt_byte_for_test`).
    #[doc(hidden)]
    #[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
    pub fn corrupt_for_test(&self, off: usize, xor: u8) {
        self.buf.corrupt_byte_for_test(off, xor);
    }

    /// Runs the compiled program.
    ///
    /// # Safety
    /// `st` must point at live buffers sized per the [`JitState`] field
    /// docs, the artifact must pass [`Self::quick_check`], and the pages
    /// must contain the code this artifact published (guaranteed by the
    /// W^X lifecycle unless a test hook tampered with them).
    pub(crate) unsafe fn run(&self, st: &mut JitState) {
        let entry: unsafe extern "C" fn(*mut JitState) =
            std::mem::transmute::<usize, unsafe extern "C" fn(*mut JitState)>(self.buf.addr_of(0));
        entry(st);
    }
}

/// Compiles `image`'s predecode table when the JIT tier is enabled,
/// reporting the compile (or its failure → interpreter fallback) to the
/// process-wide hook. Called by `machine::encode` after predecoding.
pub(crate) fn maybe_compile(
    words: &[u128],
    predecoded: &[Option<PredecodedBlock>],
    entry: u32,
) -> Option<std::sync::Arc<LaneJit>> {
    use recode_codec::jit::{report_compile, CompileEvent};
    if !recode_codec::jit::enabled() {
        return None;
    }
    let t0 = std::time::Instant::now();
    let res = LaneJit::compile(words, predecoded, entry);
    let wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    report_compile(&CompileEvent {
        what: "lane",
        code_bytes: res.as_ref().map_or(0, LaneJit::code_bytes),
        blocks: res.as_ref().map_or(0, LaneJit::blocks_lowered),
        wall_ns,
        ok: res.is_ok(),
    });
    res.ok().map(std::sync::Arc::new)
}
