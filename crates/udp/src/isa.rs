//! The UDP lane instruction set.
//!
//! A UDP program is a set of *code blocks*. Each block holds up to
//! [`MAX_ACTIONS_PER_BLOCK`] actions (executed by the Action unit) and ends
//! in exactly one transition (executed by the Dispatch unit). The paper's
//! signature feature is **multi-way dispatch**: the next block address is
//! `group_base + symbol`, where the symbol comes from the input stream or a
//! register — several branches resolved in a single one-cycle dispatch, no
//! prediction needed.
//!
//! Register file: 16 × 64-bit data registers; `r0` is hard-wired to zero
//! (writes are discarded). Each lane owns a private scratchpad
//! ([`SCRATCHPAD_BYTES`]) and a bit-granular input stream with prefetch
//! (`insym`/`peek`/`skip`/`inrem`).

use crate::error::UdpError;
use serde::{Deserialize, Serialize};

/// Register index (0..16). `r0` reads as zero and ignores writes.
pub type Reg = u8;

/// Number of data registers per lane.
pub const NUM_REGS: usize = 16;

/// Per-lane scratchpad size: 8 banks x 8 KB, as in the paper's Fig. 8.
pub const SCRATCHPAD_BYTES: usize = 64 * 1024;

/// Maximum actions per code block (the machine encoding packs four 24-bit
/// action slots plus a 32-bit transition into one 128-bit code word).
pub const MAX_ACTIONS_PER_BLOCK: usize = 4;

/// Memory access width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Width {
    /// 1 byte.
    B1,
    /// 2 bytes (little-endian).
    B2,
    /// 4 bytes (little-endian).
    B4,
    /// 8 bytes (little-endian).
    B8,
}

impl Width {
    /// Byte count.
    pub const fn bytes(self) -> usize {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }
}

/// One action, executed by the lane's Action unit in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// `rd = imm` (sign-extended 15-bit immediate).
    LoadImm {
        /// Destination.
        rd: Reg,
        /// Immediate, must fit 15 bits signed.
        imm: i16,
    },
    /// `rd = rs`.
    Mov {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// `rd = rs + rt` (wrapping).
    Add {
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
    },
    /// `rd = rs - rt` (wrapping).
    Sub {
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
    },
    /// `rd = rs & rt`.
    And {
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
    },
    /// `rd = rs | rt`.
    Or {
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
    },
    /// `rd = rs ^ rt`.
    Xor {
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
    },
    /// `rd = rs + imm` (wrapping, 11-bit signed immediate).
    AddI {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
        /// Immediate, must fit 11 bits signed.
        imm: i16,
    },
    /// `rd = rs << amount` (logical).
    ShlI {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
        /// Shift amount (0..64).
        amount: u8,
    },
    /// `rd = rs >> amount` (logical).
    ShrI {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
        /// Shift amount (0..64).
        amount: u8,
    },
    /// Scratchpad load: `rd = mem[rs + offset]` (zero-extended).
    Load {
        /// Destination.
        rd: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset, must fit 11 bits signed.
        offset: i16,
        /// Access width.
        width: Width,
    },
    /// Scratchpad store: `mem[base + offset] = low_bytes(rs)`.
    Store {
        /// Source register.
        rs: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset, must fit 11 bits signed.
        offset: i16,
        /// Access width.
        width: Width,
    },
    /// Post-increment load: `rd = mem[base]; base += width` — the streaming
    /// addressing mode every decode inner loop uses.
    LoadInc {
        /// Destination.
        rd: Reg,
        /// Base register (incremented).
        base: Reg,
        /// Access width.
        width: Width,
    },
    /// Post-increment store: `mem[base] = low_bytes(rs); base += width`.
    StoreInc {
        /// Source register.
        rs: Reg,
        /// Base register (incremented).
        base: Reg,
        /// Access width.
        width: Width,
    },
    /// Consume `bits` (1..=32) from the input stream, MSB-first, into `rd`.
    InSym {
        /// Destination.
        rd: Reg,
        /// Bit count.
        bits: u8,
    },
    /// Consume `bytes` (1..=8) from the (byte-aligned) input stream and
    /// assemble them little-endian into `rd` — the Stream Prefetch unit's
    /// byte-symbol mode.
    InSymLe {
        /// Destination.
        rd: Reg,
        /// Byte count.
        bytes: u8,
    },
    /// Peek `bits` (1..=32) MSB-first without consuming; bits past the end
    /// of stream read as zero.
    PeekSym {
        /// Destination.
        rd: Reg,
        /// Bit count.
        bits: u8,
    },
    /// Consume and discard `bits` from the input stream.
    SkipSym {
        /// Bit count (1..=32).
        bits: u8,
    },
    /// Consume and discard `rs` bits (register-specified).
    SkipReg {
        /// Bit-count register.
        rs: Reg,
    },
    /// `rd = number of unconsumed input bits`.
    InRem {
        /// Destination.
        rd: Reg,
    },
}

impl Action {
    /// Validates field ranges that the machine encoding can represent.
    ///
    /// # Errors
    /// [`UdpError::Program`] naming the violated field.
    pub fn validate(&self) -> Result<(), UdpError> {
        self.validate_str().map_err(UdpError::Program)
    }

    fn validate_str(self) -> Result<(), String> {
        let reg_ok = |r: Reg| (r as usize) < NUM_REGS;
        let regs: Vec<Reg> = match self {
            Action::LoadImm { rd, .. } => vec![rd],
            Action::Mov { rd, rs } => vec![rd, rs],
            Action::Add { rd, rs, rt }
            | Action::Sub { rd, rs, rt }
            | Action::And { rd, rs, rt }
            | Action::Or { rd, rs, rt }
            | Action::Xor { rd, rs, rt } => vec![rd, rs, rt],
            Action::AddI { rd, rs, .. } => vec![rd, rs],
            Action::ShlI { rd, rs, .. } | Action::ShrI { rd, rs, .. } => vec![rd, rs],
            Action::Load { rd, base, .. } => vec![rd, base],
            Action::Store { rs, base, .. } => vec![rs, base],
            Action::LoadInc { rd, base, .. } => vec![rd, base],
            Action::StoreInc { rs, base, .. } => vec![rs, base],
            Action::InSym { rd, .. } | Action::PeekSym { rd, .. } => vec![rd],
            Action::InSymLe { rd, .. } => vec![rd],
            Action::SkipSym { .. } => vec![],
            Action::SkipReg { rs } => vec![rs],
            Action::InRem { rd } => vec![rd],
        };
        for r in regs {
            if !reg_ok(r) {
                return Err(format!("register r{r} out of range"));
            }
        }
        match self {
            Action::LoadImm { imm, .. } if !(-(1 << 14)..(1 << 14)).contains(&(imm as i32)) => {
                Err(format!("LoadImm immediate {imm} exceeds 15 bits"))
            }
            Action::AddI { imm, .. } if !(-(1 << 10)..(1 << 10)).contains(&(imm as i32)) => {
                Err(format!("AddI immediate {imm} exceeds 11 bits"))
            }
            Action::Load { offset, .. } | Action::Store { offset, .. }
                if !(-(1 << 10)..(1 << 10)).contains(&(offset as i32)) =>
            {
                Err("memory offset exceeds 11 bits".to_string())
            }
            Action::ShlI { amount, .. } | Action::ShrI { amount, .. } if amount > 63 => {
                Err("shift amount exceeds 63".into())
            }
            Action::InSym { bits, .. } | Action::PeekSym { bits, .. } if bits == 0 || bits > 32 => {
                Err(format!("stream bit count {bits} outside 1..=32"))
            }
            Action::SkipSym { bits } if bits == 0 || bits > 32 => {
                Err(format!("skip bit count {bits} outside 1..=32"))
            }
            Action::InSymLe { bytes, .. } if bytes == 0 || bytes > 8 => {
                Err(format!("LE byte count {bytes} outside 1..=8"))
            }
            Action::StoreInc { width: Width::B2, .. } => {
                Err("StoreInc does not support 2-byte width (no opcode row)".into())
            }
            _ => Ok(()),
        }
    }
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cond {
    /// `rs == rt`.
    Eq,
    /// `rs != rt`.
    Ne,
    /// `rs < rt` (unsigned).
    Ltu,
    /// `rs >= rt` (unsigned).
    Geu,
    /// `rs < rt` (signed).
    Lts,
    /// `rs >= rt` (signed).
    Ges,
}

impl Cond {
    /// Evaluates the condition on two 64-bit register values.
    pub fn eval(self, rs: u64, rt: u64) -> bool {
        match self {
            Cond::Eq => rs == rt,
            Cond::Ne => rs != rt,
            Cond::Ltu => rs < rt,
            Cond::Geu => rs >= rt,
            Cond::Lts => (rs as i64) < (rt as i64),
            Cond::Ges => (rs as i64) >= (rt as i64),
        }
    }
}

/// Symbolic reference to a code block (pre-placement).
pub type BlockId = u32;

/// Symbolic reference to a dispatch group (pre-placement).
pub type GroupId = u32;

/// Block terminator, executed by the Dispatch unit in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transition {
    /// Stop the lane.
    Halt,
    /// Unconditional jump.
    Jump(BlockId),
    /// Consume `bits` from the stream; next = `base(group) + symbol`.
    DispatchSym {
        /// Bits to consume (1..=16).
        bits: u8,
        /// Target group.
        group: GroupId,
    },
    /// Peek `bits` (zero-padded past end); next = `base(group) + symbol`.
    /// The target block is responsible for consuming the code via `skip`.
    DispatchPeek {
        /// Bits to peek (1..=16).
        bits: u8,
        /// Target group.
        group: GroupId,
    },
    /// Next = `base(group) + rs` (register-indexed dispatch).
    DispatchReg {
        /// Index register.
        rs: Reg,
        /// Target group.
        group: GroupId,
    },
    /// Two-way conditional: `taken` if `cond(rs, rt)`, otherwise fall
    /// through to the block placed at the next code address (a placement
    /// constraint EffCLiP must honor).
    Branch {
        /// Condition.
        cond: Cond,
        /// Left register.
        rs: Reg,
        /// Right register.
        rt: Reg,
        /// Target when the condition holds.
        taken: BlockId,
        /// Block that must be placed at `this + 1` (fall-through).
        fallthrough: BlockId,
    },
}

impl Transition {
    /// Validates representable field ranges.
    ///
    /// # Errors
    /// [`UdpError::Program`] naming the violated field.
    pub fn validate(&self) -> Result<(), UdpError> {
        self.validate_str().map_err(UdpError::Program)
    }

    fn validate_str(&self) -> Result<(), String> {
        match *self {
            Transition::DispatchSym { bits, .. } | Transition::DispatchPeek { bits, .. } => {
                if bits == 0 || bits > 16 {
                    return Err(format!("dispatch bit width {bits} outside 1..=16"));
                }
                Ok(())
            }
            Transition::DispatchReg { rs, .. } => {
                if (rs as usize) >= NUM_REGS {
                    return Err(format!("register r{rs} out of range"));
                }
                Ok(())
            }
            Transition::Branch { rs, rt, .. } => {
                if (rs as usize) >= NUM_REGS || (rt as usize) >= NUM_REGS {
                    return Err("branch register out of range".into());
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// One code block: a short straight-line action sequence plus a transition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Up to [`MAX_ACTIONS_PER_BLOCK`] actions.
    pub actions: Vec<Action>,
    /// The terminator.
    pub transition: Transition,
}

impl Block {
    /// Validates action count and field ranges.
    ///
    /// # Errors
    /// [`UdpError::Program`] naming the violation.
    pub fn validate(&self) -> Result<(), UdpError> {
        if self.actions.len() > MAX_ACTIONS_PER_BLOCK {
            return Err(UdpError::Program(format!(
                "{} actions exceed the {MAX_ACTIONS_PER_BLOCK}-slot code word",
                self.actions.len()
            )));
        }
        for a in &self.actions {
            a.validate()?;
        }
        self.transition.validate()
    }

    /// Cycle cost: one dispatch cycle plus one per action.
    pub fn cycles(&self) -> u64 {
        1 + self.actions.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_bytes() {
        assert_eq!(Width::B1.bytes(), 1);
        assert_eq!(Width::B8.bytes(), 8);
    }

    #[test]
    fn action_validation_catches_bad_fields() {
        assert!(Action::LoadImm { rd: 16, imm: 0 }.validate().is_err());
        assert!(Action::LoadImm { rd: 1, imm: i16::MAX }.validate().is_err());
        assert!(Action::LoadImm { rd: 1, imm: (1 << 14) - 1 }.validate().is_ok());
        assert!(Action::AddI { rd: 1, rs: 2, imm: 1 << 10 }.validate().is_err());
        assert!(Action::InSym { rd: 1, bits: 0 }.validate().is_err());
        assert!(Action::InSym { rd: 1, bits: 33 }.validate().is_err());
        assert!(Action::InSymLe { rd: 1, bytes: 9 }.validate().is_err());
        assert!(Action::ShlI { rd: 1, rs: 1, amount: 64 }.validate().is_err());
        assert!(Action::Store { rs: 3, base: 2, offset: -1024, width: Width::B8 }
            .validate()
            .is_ok());
    }

    #[test]
    fn transition_validation() {
        assert!(Transition::DispatchSym { bits: 17, group: 0 }.validate().is_err());
        assert!(Transition::DispatchSym { bits: 8, group: 0 }.validate().is_ok());
        assert!(Transition::DispatchReg { rs: 99, group: 0 }.validate().is_err());
    }

    #[test]
    fn cond_eval_signed_vs_unsigned() {
        let neg1 = -1i64 as u64;
        assert!(Cond::Ltu.eval(1, neg1), "unsigned: 1 < 2^64-1");
        assert!(!Cond::Lts.eval(1, neg1), "signed: 1 > -1");
        assert!(Cond::Ges.eval(0, neg1));
        assert!(Cond::Eq.eval(5, 5));
        assert!(Cond::Ne.eval(5, 6));
        assert!(Cond::Geu.eval(7, 7));
    }

    #[test]
    fn block_cycle_cost() {
        let b = Block {
            actions: vec![Action::Mov { rd: 1, rs: 2 }, Action::InRem { rd: 3 }],
            transition: Transition::Halt,
        };
        assert_eq!(b.cycles(), 3);
        assert!(b.validate().is_ok());
    }

    #[test]
    fn block_rejects_too_many_actions() {
        let b = Block { actions: vec![Action::InRem { rd: 1 }; 5], transition: Transition::Halt };
        assert!(b.validate().is_err());
    }
}
