//! Lane recycling: a process-wide free list of [`Lane`]s so "fresh lane"
//! call sites (fault retries, per-tile decodes in the overlap executor,
//! per-batch worker lanes) stop paying a 64 KB zeroed allocation each time.
//!
//! Correctness rests on the lane's own contract: every `run*` entry point
//! fully re-initializes architectural state, so a pooled lane is
//! indistinguishable from `Lane::new()` — the differential and fault suites
//! exercise exactly this substitution.

use crate::lane::Lane;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// Free lanes kept per pool; beyond this, returned lanes are dropped
/// (each holds a 64 KB scratchpad — the cap bounds idle memory at ~16 MB).
const MAX_POOLED: usize = 256;

/// A free list of reusable lanes. Checkout pops a recycled lane (or builds
/// one on first use); dropping the guard returns it.
pub struct LanePool {
    free: Mutex<Vec<Lane>>,
}

impl LanePool {
    /// An empty pool.
    pub const fn new() -> Self {
        LanePool { free: Mutex::new(Vec::new()) }
    }

    /// Takes a lane out of the pool, creating one if none are free. The
    /// lane rides back into the pool when the returned guard drops.
    pub fn checkout(&self) -> PooledLane<'_> {
        let lane = self.lock().pop().unwrap_or_default();
        PooledLane { pool: self, lane: Some(lane) }
    }

    /// Number of lanes currently parked in the free list.
    pub fn idle(&self) -> usize {
        self.lock().len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Lane>> {
        // A panicked holder can only have poisoned the list mid-push/pop of
        // whole lanes; the Vec is still structurally sound.
        self.free.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Default for LanePool {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide pool used by the accelerator batch loop, the exec
/// retry ladder, and the overlap executor.
pub fn global() -> &'static LanePool {
    static POOL: LanePool = LanePool::new();
    &POOL
}

/// Checkout guard: derefs to [`Lane`], returns the lane to its pool on drop.
pub struct PooledLane<'a> {
    pool: &'a LanePool,
    lane: Option<Lane>,
}

impl Deref for PooledLane<'_> {
    type Target = Lane;
    fn deref(&self) -> &Lane {
        self.lane.as_ref().expect("lane present until drop")
    }
}

impl DerefMut for PooledLane<'_> {
    fn deref_mut(&mut self) -> &mut Lane {
        self.lane.as_mut().expect("lane present until drop")
    }
}

impl Drop for PooledLane<'_> {
    fn drop(&mut self) {
        if let Some(lane) = self.lane.take() {
            let mut free = self.pool.lock();
            if free.len() < MAX_POOLED {
                free.push(lane);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_recycles_the_same_lane_allocation() {
        let pool = LanePool::new();
        assert_eq!(pool.idle(), 0);
        {
            let _a = pool.checkout();
            let _b = pool.checkout();
        }
        assert_eq!(pool.idle(), 2);
        {
            let _c = pool.checkout();
            assert_eq!(pool.idle(), 1, "checkout must reuse a parked lane");
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn global_pool_is_shared() {
        let before = global().idle();
        drop(global().checkout());
        assert!(global().idle() >= 1.min(before + 1));
    }
}
