//! Lane recycling: a process-wide free list of [`Lane`]s so "fresh lane"
//! call sites (fault retries, per-tile decodes in the overlap executor,
//! per-batch worker lanes) stop paying a 64 KB zeroed allocation each time.
//!
//! Correctness rests on the lane's own contract: every `run*` entry point
//! fully re-initializes architectural state, so a pooled lane is
//! indistinguishable from `Lane::new()` — the differential and fault suites
//! exercise exactly this substitution.
//!
//! ## Lane health & quarantine
//!
//! Each lane carries a [`LaneHealth`](crate::lane::LaneHealth) record that
//! the decode path updates (`note_trap` on a lane-attributable trap,
//! `note_success` on a clean decode). When a returning lane has trapped
//! [`PoolConfig::quarantine_threshold`] times in a row it is parked on a
//! quarantine list instead of the free list. Every
//! [`PoolConfig::probation_interval`] checkouts one quarantined lane is
//! readmitted *on probation*: it serves the checkout directly, and a single
//! further trap sends it straight back to quarantine while one clean decode
//! restores it to full health. Quarantined lanes do **not** count against
//! [`PoolConfig::capacity`] (the free-list cap); the quarantine list is
//! bounded by the same capacity value independently.

use crate::lane::Lane;
use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, OnceLock};

/// Pool lifecycle notifications fanned out through the hook installed with
/// [`set_event_hook`]. The pool itself keeps no observers — the hook exists
/// so a higher layer (the `recode-core` flight recorder) can timestamp pool
/// traffic without this crate depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolEvent {
    /// A returning lane crossed the quarantine threshold and was parked.
    Quarantined,
    /// A quarantined lane was readmitted on probation to serve a checkout.
    Readmitted,
    /// A checkout was served by recycling a parked lane.
    Recycled,
}

static EVENT_HOOK: OnceLock<fn(PoolEvent)> = OnceLock::new();

/// Installs the process-wide pool event hook. First caller wins; later
/// calls are no-ops (the hook is a `fn` pointer, so there is nothing to
/// tear down). The hook runs outside the pool lock.
pub fn set_event_hook(hook: fn(PoolEvent)) {
    let _ = EVENT_HOOK.set(hook);
}

#[inline]
fn emit(event: PoolEvent) {
    if let Some(hook) = EVENT_HOOK.get() {
        hook(event);
    }
}

/// Default free-lane cap per pool; beyond this, returned lanes are dropped
/// (each holds a 64 KB scratchpad — the cap bounds idle memory at ~16 MB).
pub const DEFAULT_POOL_CAPACITY: usize = 256;

/// Tuning knobs for a [`LanePool`]. All fields have documented defaults;
/// construct with `PoolConfig::default()` and override selectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Maximum lanes parked on the free list ([`DEFAULT_POOL_CAPACITY`]).
    /// Quarantined lanes are exempt from this cap.
    pub capacity: usize,
    /// Consecutive lane-attributable traps before a returning lane is
    /// quarantined. `0` disables quarantine entirely.
    pub quarantine_threshold: u32,
    /// Checkouts between probation probes: every this-many checkouts one
    /// quarantined lane is readmitted on probation. `0` disables
    /// readmission (quarantine becomes permanent for the pool's lifetime).
    pub probation_interval: u64,
}

impl PoolConfig {
    /// The default policy: capacity 256, quarantine after 3 consecutive
    /// traps, probe one quarantined lane every 16 checkouts.
    pub const fn new() -> Self {
        PoolConfig {
            capacity: DEFAULT_POOL_CAPACITY,
            quarantine_threshold: 3,
            probation_interval: 16,
        }
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Monotonic pool counters, exported into telemetry as `pool.*` counters by
/// the traced exec paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total checkouts served.
    pub checkouts: u64,
    /// Checkouts served from the free list (recycled allocation).
    pub recycled_hits: u64,
    /// Checkouts that had to build a fresh lane.
    pub fresh_builds: u64,
    /// Lanes returned to the free list on guard drop.
    pub returned: u64,
    /// Lanes dropped on return because the free list was at capacity.
    pub dropped_at_capacity: u64,
    /// Lanes moved to the quarantine list on return.
    pub quarantined: u64,
    /// Quarantined lanes readmitted on probation.
    pub readmitted: u64,
}

/// Everything behind the pool's single mutex.
struct PoolInner {
    config: PoolConfig,
    free: Vec<Lane>,
    quarantined: Vec<Lane>,
    stats: PoolStats,
    checkouts_since_probe: u64,
}

/// A free list of reusable lanes with health-based quarantine. Checkout
/// pops a recycled lane (or builds one on first use); dropping the guard
/// returns it — to the free list, or to quarantine when its health record
/// crossed [`PoolConfig::quarantine_threshold`].
pub struct LanePool {
    inner: Mutex<PoolInner>,
}

impl LanePool {
    /// An empty pool with the default [`PoolConfig`].
    pub const fn new() -> Self {
        LanePool {
            inner: Mutex::new(PoolInner {
                config: PoolConfig::new(),
                free: Vec::new(),
                quarantined: Vec::new(),
                stats: PoolStats {
                    checkouts: 0,
                    recycled_hits: 0,
                    fresh_builds: 0,
                    returned: 0,
                    dropped_at_capacity: 0,
                    quarantined: 0,
                    readmitted: 0,
                },
                checkouts_since_probe: 0,
            }),
        }
    }

    /// An empty pool with an explicit config.
    pub fn with_config(config: PoolConfig) -> Self {
        let pool = Self::new();
        pool.set_config(config);
        pool
    }

    /// Replaces the pool's policy. Takes effect for subsequent checkouts
    /// and returns; lanes already parked are kept (the free list is
    /// truncated if the new capacity is smaller).
    pub fn set_config(&self, config: PoolConfig) {
        let mut inner = self.lock();
        inner.config = config;
        if inner.free.len() > config.capacity {
            inner.free.truncate(config.capacity);
        }
    }

    /// The active policy.
    pub fn config(&self) -> PoolConfig {
        self.lock().config
    }

    /// Takes a lane out of the pool, creating one if none are free. The
    /// lane rides back into the pool when the returned guard drops.
    ///
    /// Every [`PoolConfig::probation_interval`] checkouts, one quarantined
    /// lane (if any) is readmitted on probation and serves the checkout
    /// directly.
    pub fn checkout(&self) -> PooledLane<'_> {
        let (lane, event) = {
            let mut inner = self.lock();
            inner.stats.checkouts += 1;
            inner.checkouts_since_probe += 1;
            let interval = inner.config.probation_interval;
            if interval > 0
                && inner.checkouts_since_probe >= interval
                && !inner.quarantined.is_empty()
            {
                inner.checkouts_since_probe = 0;
                let mut lane = inner.quarantined.pop().expect("non-empty quarantine");
                lane.begin_probation();
                inner.stats.readmitted += 1;
                (lane, Some(PoolEvent::Readmitted))
            } else if let Some(lane) = inner.free.pop() {
                inner.stats.recycled_hits += 1;
                (lane, Some(PoolEvent::Recycled))
            } else {
                inner.stats.fresh_builds += 1;
                (Lane::new(), None)
            }
        };
        if let Some(event) = event {
            emit(event);
        }
        PooledLane { pool: self, lane: Some(lane) }
    }

    /// Number of lanes currently parked in the free list.
    pub fn idle(&self) -> usize {
        self.lock().free.len()
    }

    /// Number of lanes currently held in quarantine.
    pub fn quarantined_count(&self) -> usize {
        self.lock().quarantined.len()
    }

    /// Snapshot of the pool's monotonic counters.
    pub fn stats(&self) -> PoolStats {
        self.lock().stats
    }

    /// Drops every parked lane (free and quarantined) and zeroes the
    /// counters. The config is kept. Used by the chaos harness to isolate
    /// trials sharing the process-wide pool.
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.free.clear();
        inner.quarantined.clear();
        inner.stats = PoolStats::default();
        inner.checkouts_since_probe = 0;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        // A panicked holder can only have poisoned the state mid-push/pop
        // of whole lanes; the lists are still structurally sound.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Default for LanePool {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide pool used by the accelerator batch loop, the exec
/// retry ladder, and the overlap executor.
pub fn global() -> &'static LanePool {
    static POOL: LanePool = LanePool::new();
    &POOL
}

/// Checkout guard: derefs to [`Lane`], returns the lane to its pool on drop.
pub struct PooledLane<'a> {
    pool: &'a LanePool,
    lane: Option<Lane>,
}

impl Deref for PooledLane<'_> {
    type Target = Lane;
    fn deref(&self) -> &Lane {
        self.lane.as_ref().expect("lane present until drop")
    }
}

impl DerefMut for PooledLane<'_> {
    fn deref_mut(&mut self) -> &mut Lane {
        self.lane.as_mut().expect("lane present until drop")
    }
}

impl Drop for PooledLane<'_> {
    fn drop(&mut self) {
        if let Some(lane) = self.lane.take() {
            let quarantined = {
                let mut inner = self.pool.lock();
                let cfg = inner.config;
                if lane.health().should_quarantine(cfg.quarantine_threshold) {
                    // Quarantined lanes are exempt from `capacity`; their
                    // list is independently bounded by the same value.
                    if inner.quarantined.len() < cfg.capacity {
                        inner.quarantined.push(lane);
                    }
                    inner.stats.quarantined += 1;
                    true
                } else {
                    if inner.free.len() < cfg.capacity {
                        inner.free.push(lane);
                        inner.stats.returned += 1;
                    } else {
                        inner.stats.dropped_at_capacity += 1;
                    }
                    false
                }
            };
            if quarantined {
                emit(PoolEvent::Quarantined);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_recycles_the_same_lane_allocation() {
        let pool = LanePool::new();
        assert_eq!(pool.idle(), 0);
        {
            let _a = pool.checkout();
            let _b = pool.checkout();
        }
        assert_eq!(pool.idle(), 2);
        {
            let _c = pool.checkout();
            assert_eq!(pool.idle(), 1, "checkout must reuse a parked lane");
        }
        assert_eq!(pool.idle(), 2);
        let stats = pool.stats();
        assert_eq!(stats.checkouts, 3);
        assert_eq!(stats.fresh_builds, 2);
        assert_eq!(stats.recycled_hits, 1);
        assert_eq!(stats.returned, 3);
    }

    #[test]
    fn global_pool_is_shared() {
        let before = global().idle();
        drop(global().checkout());
        assert!(global().idle() >= 1.min(before + 1));
    }

    #[test]
    fn capacity_bounds_the_free_list() {
        let pool = LanePool::with_config(PoolConfig { capacity: 2, ..PoolConfig::new() });
        {
            let _a = pool.checkout();
            let _b = pool.checkout();
            let _c = pool.checkout();
        }
        assert_eq!(pool.idle(), 2, "free list capped at capacity");
        assert_eq!(pool.stats().dropped_at_capacity, 1);
    }

    #[test]
    fn repeated_traps_quarantine_a_lane() {
        let cfg =
            PoolConfig { quarantine_threshold: 3, probation_interval: 0, ..PoolConfig::new() };
        let pool = LanePool::with_config(cfg);
        {
            let mut lane = pool.checkout();
            lane.note_trap();
            lane.note_trap();
        }
        assert_eq!(pool.idle(), 1, "two traps stay below the threshold");
        assert_eq!(pool.quarantined_count(), 0);
        {
            let mut lane = pool.checkout();
            lane.note_trap();
        }
        assert_eq!(pool.idle(), 0);
        assert_eq!(pool.quarantined_count(), 1, "third consecutive trap quarantines");
        assert_eq!(pool.stats().quarantined, 1);
    }

    #[test]
    fn a_success_resets_the_trap_streak() {
        let cfg =
            PoolConfig { quarantine_threshold: 2, probation_interval: 0, ..PoolConfig::new() };
        let pool = LanePool::with_config(cfg);
        {
            let mut lane = pool.checkout();
            lane.note_trap();
            lane.note_success();
            lane.note_trap();
        }
        assert_eq!(pool.quarantined_count(), 0, "streak broken by the success");
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn quarantined_lanes_do_not_count_against_capacity() {
        // Capacity 1: the free list holds at most one lane, but a second
        // (quarantined) lane must still be retained.
        let cfg = PoolConfig { capacity: 1, quarantine_threshold: 1, probation_interval: 0 };
        let pool = LanePool::with_config(cfg);
        {
            let _healthy = pool.checkout();
            let mut sick = pool.checkout();
            sick.note_trap();
        }
        assert_eq!(pool.idle(), 1, "healthy lane fills the capacity-1 free list");
        assert_eq!(
            pool.quarantined_count(),
            1,
            "quarantined lane retained even though the free list is full"
        );
        // And the reverse: a full quarantine list does not block healthy returns.
        {
            let _healthy = pool.checkout();
        }
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.quarantined_count(), 1);
    }

    #[test]
    fn probation_readmits_and_a_clean_run_restores_health() {
        let cfg = PoolConfig { capacity: 8, quarantine_threshold: 1, probation_interval: 2 };
        let pool = LanePool::with_config(cfg);
        {
            let mut sick = pool.checkout();
            sick.note_trap();
        }
        assert_eq!(pool.quarantined_count(), 1);
        // Second checkout since the last probe: the quarantined lane comes
        // back on probation and serves it.
        let lane = pool.checkout();
        assert!(lane.health().probation, "readmitted lane is on probation");
        assert_eq!(pool.stats().readmitted, 1);
        drop(lane);
        // Returned without a further trap (probation with a zero streak is
        // not a quarantine offence) — but still on probation until a success.
        assert_eq!(pool.quarantined_count(), 0);
        assert_eq!(pool.idle(), 1);
        {
            let mut lane = pool.checkout();
            lane.note_success();
            assert!(!lane.health().probation, "success clears probation");
        }
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn a_trap_during_probation_requarantines_immediately() {
        let cfg = PoolConfig { capacity: 8, quarantine_threshold: 3, probation_interval: 1 };
        let pool = LanePool::with_config(cfg);
        {
            let mut sick = pool.checkout();
            sick.note_trap();
            sick.note_trap();
            sick.note_trap();
        }
        assert_eq!(pool.quarantined_count(), 1);
        {
            let mut lane = pool.checkout();
            assert!(lane.health().probation);
            lane.note_trap();
        }
        assert_eq!(
            pool.quarantined_count(),
            1,
            "one trap on probation goes straight back to quarantine"
        );
        assert_eq!(pool.stats().quarantined, 2);
    }

    /// Seeded interleaving stress (ISSUE 9): many threads checkout/trap/
    /// return against a small pool from a fixed barrier. The monotonic
    /// counters must partition exactly under every schedule: each checkout
    /// is served by exactly one source, each guard drop lands in exactly
    /// one return bucket, and the parked inventory respects its caps.
    #[test]
    fn concurrent_quarantine_counters_partition_exactly() {
        const THREADS: usize = 8;
        const ITERS: u64 = 200;
        let cfg = PoolConfig { capacity: 4, quarantine_threshold: 2, probation_interval: 3 };
        let pool = LanePool::with_config(cfg);
        let barrier = std::sync::Barrier::new(THREADS);
        std::thread::scope(|s| {
            for w in 0..THREADS {
                let pool = &pool;
                let barrier = &barrier;
                s.spawn(move || {
                    // Fixed per-thread xorshift seed: the trap/success mix
                    // is deterministic, only the interleaving varies.
                    let mut seed = 0x9e37_79b9_7f4a_7c15u64 ^ (w as u64 + 1);
                    barrier.wait();
                    for _ in 0..ITERS {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        let mut lane = pool.checkout();
                        match seed % 4 {
                            0 => lane.note_success(),
                            1 => {
                                lane.note_trap();
                                lane.note_trap();
                            }
                            2 => lane.note_trap(),
                            _ => {}
                        }
                    }
                });
            }
        });
        let st = pool.stats();
        let total = THREADS as u64 * ITERS;
        assert_eq!(st.checkouts, total, "every checkout is counted exactly once");
        assert_eq!(
            st.recycled_hits + st.fresh_builds + st.readmitted,
            total,
            "each checkout is served by exactly one source"
        );
        assert_eq!(
            st.returned + st.dropped_at_capacity + st.quarantined,
            total,
            "each guard drop lands in exactly one return bucket"
        );
        assert!(st.readmitted <= st.quarantined, "cannot readmit more lanes than were parked");
        assert!(pool.idle() <= cfg.capacity, "free list respects its cap");
        assert!(pool.quarantined_count() <= cfg.capacity, "quarantine list respects its cap");
        assert!(
            (pool.idle() as u64) <= st.returned,
            "parked inventory never exceeds counted returns"
        );
    }

    #[test]
    fn reset_clears_lanes_and_counters() {
        let pool = LanePool::new();
        drop(pool.checkout());
        assert_eq!(pool.idle(), 1);
        pool.reset();
        assert_eq!(pool.idle(), 0);
        assert_eq!(pool.stats(), PoolStats::default());
    }
}
