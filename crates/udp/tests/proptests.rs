//! Property tests: the UDP decoder programs must agree bit-for-bit with the
//! software codecs on arbitrary inputs, and the EffCLiP pipeline must place
//! arbitrary generated programs validly.

use proptest::prelude::*;
use recode_codec::huffman::HuffmanTable;
use recode_codec::pipeline::{Pipeline, PipelineConfig};
use recode_codec::{delta, huffman, snappy};
use recode_udp::lane::{Lane, RunConfig};
use recode_udp::machine;
use recode_udp::progs::{self, DshDecoder};

fn payload() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..1500),
        (any::<u8>(), 1usize..1500).prop_map(|(b, n)| vec![b; n]),
        proptest::collection::vec(0u8..6, 0..1500),
        (1usize..12, 1usize..1500).prop_map(|(p, n)| (0..n).map(|i| (i % p) as u8).collect()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn udp_snappy_matches_software(data in payload()) {
        let c = snappy::compress(&data);
        let image = progs::snappy::build().unwrap();
        let mut lane = Lane::new();
        let out = lane.run(&image, &c, c.len() * 8, RunConfig::default()).unwrap().output;
        prop_assert_eq!(out, snappy::decompress(&c).unwrap());
    }

    #[test]
    fn udp_huffman_matches_software(data in payload()) {
        let mut hist = [1u64; 256];
        for &b in &data { hist[b as usize] += 1; }
        let t = HuffmanTable::from_histogram(&hist);
        let (bytes, bits) = huffman::encode(&data, &t).unwrap();
        let image = progs::huffman::compile(&t.lengths).unwrap();
        let mut lane = Lane::new();
        let out = lane.run(&image, &bytes, bits, RunConfig::default()).unwrap().output;
        prop_assert_eq!(out, data);
    }

    #[test]
    fn udp_delta_matches_software(idx in proptest::collection::vec(0u32..(1 << 31), 0..400)) {
        let enc = delta::encode_u32(&idx).unwrap();
        let image = progs::delta::build().unwrap();
        let mut lane = Lane::new();
        let out = lane.run(&image, &enc, enc.len() * 8, RunConfig::default()).unwrap().output;
        prop_assert_eq!(out, delta::decode_bytes(&enc).unwrap());
    }

    #[test]
    fn udp_full_pipeline_matches_encoder_input(data in payload()) {
        let mut data = data;
        data.truncate(data.len() & !3);
        for word in data.chunks_exact_mut(4) {
            word[3] &= 0x7F; // keep words < 2^31 for the delta stage
        }
        let config = PipelineConfig { block_bytes: 2048, ..PipelineConfig::dsh_udp() };
        let pipe = Pipeline::train(config, &data).unwrap();
        let stream = pipe.encode_stream(&data).unwrap();
        let decoder = DshDecoder::new(config, pipe.table().map(|t| t.lengths.as_slice())).unwrap();
        let mut lane = Lane::new();
        let mut out = Vec::new();
        for block in &stream.blocks {
            out.extend(decoder.decode_block(&mut lane, block).unwrap().output);
        }
        prop_assert_eq!(out, data);
    }

    #[test]
    fn corrupt_payload_never_panics_the_lane(data in payload(), flip in any::<(usize, usize, u8)>()) {
        let mut data = data;
        data.truncate(data.len() & !3);
        for word in data.chunks_exact_mut(4) {
            word[3] &= 0x7F;
        }
        let config = PipelineConfig { block_bytes: 2048, ..PipelineConfig::dsh_udp() };
        let pipe = Pipeline::train(config, &data).unwrap();
        let mut stream = pipe.encode_stream(&data).unwrap();
        if stream.blocks.is_empty() { return Ok(()); }
        let bi = flip.0 % stream.blocks.len();
        let block = &mut stream.blocks[bi];
        if block.payload.is_empty() { return Ok(()); }
        let pos = flip.1 % block.payload.len();
        block.payload[pos] ^= flip.2 | 1;
        let decoder = DshDecoder::new(config, pipe.table().map(|t| t.lengths.as_slice())).unwrap();
        let mut lane = Lane::new();
        let _ = decoder.decode_block(&mut lane, &stream.blocks[bi]); // trap or garbage, never panic
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random well-formed programs place validly under EffCLiP and their
    /// binary encodings decode back to the same logical blocks.
    #[test]
    fn random_programs_place_and_encode_round_trip(
        n_singles in 1usize..40,
        group_sizes in proptest::collection::vec(1usize..20, 0..4),
        chain_lens in proptest::collection::vec(1usize..6, 0..6),
        imm in -100i16..100,
    ) {
        use recode_udp::isa::{Action, Block, Cond, Transition};
        use recode_udp::program::ProgramBuilder;
        let mut pb = ProgramBuilder::new("fuzz");
        let done = pb.block(Block { actions: vec![], transition: Transition::Halt });
        let mut groups = Vec::new();
        for gs in &group_sizes {
            let members: Vec<_> = (0..*gs)
                .map(|k| {
                    pb.block(Block {
                        actions: vec![Action::LoadImm { rd: 1, imm: imm.wrapping_add(k as i16) }],
                        transition: Transition::Jump(done),
                    })
                })
                .collect();
            groups.push(pb.group(
                members.iter().enumerate().map(|(i, &b)| (2 * i as u32, b)).collect(),
            ));
        }
        for len in &chain_lens {
            let mut next = done;
            for _ in 0..*len {
                let fall = pb.block(Block { actions: vec![], transition: Transition::Jump(done) });
                next = pb.block(Block {
                    actions: vec![],
                    transition: Transition::Branch {
                        cond: Cond::Ne,
                        rs: 1,
                        rt: 0,
                        taken: next,
                        fallthrough: fall,
                    },
                });
            }
        }
        for _ in 0..n_singles {
            pb.block(Block {
                actions: vec![Action::AddI { rd: 2, rs: 2, imm: 1 }],
                transition: Transition::Jump(done),
            });
        }
        let entry = if let Some(&g) = groups.first() {
            pb.block(Block { actions: vec![], transition: Transition::DispatchSym { bits: 6, group: g } })
        } else {
            pb.block(Block { actions: vec![], transition: Transition::Jump(done) })
        };
        pb.entry(entry);
        let program = pb.build().unwrap();
        let placement = recode_udp::effclip::place(&program).unwrap();
        recode_udp::effclip::verify(&program, &placement).unwrap();
        let image = machine::encode(&program, &placement).unwrap();
        // Every placed block decodes to its logical actions.
        for (bid, block) in program.blocks.iter().enumerate() {
            let dec = image.decode(placement.block_addr[bid]).unwrap();
            prop_assert_eq!(&dec.actions, &block.actions);
        }
        // Packing density stays reasonable even for adversarial mixes.
        prop_assert!(placement.utilization > 0.3, "utilization {}", placement.utilization);
    }
}
