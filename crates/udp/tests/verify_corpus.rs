//! Negative-test corpus for the static verifier (ISSUE 4).
//!
//! Each `.udp` file under `tests/corpus/` is deliberately broken in exactly
//! one interesting way; these tests assert that the corresponding analysis
//! fires with the right severity and anchors the finding to the right block
//! and source line. Together they cover every analysis the verifier runs:
//! reachability, register init (warn + the r0 info), dead writes,
//! scratchpad bounds, output contract, termination (no-exit and
//! invariant-exit loops), stream bounds, dispatch tables (empty group,
//! incomplete table, unselectable slot), cycle-bound certification
//! (unboundable loop, budget overflow, per-bit overrun), and predecode
//! translation validation (post-assembly word tampering).

use recode_udp::asm::assemble_text_with_map;
use recode_udp::lane::{Lane, LaneError, RunConfig};
use recode_udp::machine::assemble;
use recode_udp::verify::{verify_image, Analysis, Finding, Severity, VerifyConfig, VerifyReport};

/// Assembles a corpus program and returns its line-annotated report.
fn report(name: &str, src: &str) -> VerifyReport {
    let (program, map) =
        assemble_text_with_map(name, src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let image = assemble(&program).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut r = image.verify_report.clone();
    r.attach_lines(&map);
    r
}

/// The first finding from `analysis` at `severity`, with context on failure.
fn expect(r: &VerifyReport, analysis: Analysis, severity: Severity) -> &Finding {
    r.findings
        .iter()
        .find(|f| f.analysis == analysis && f.severity == severity)
        .unwrap_or_else(|| panic!("expected {severity} {analysis:?} finding in:\n{r}"))
}

#[test]
fn unreachable_block_is_flagged_with_its_line() {
    let r = report("unreachable", include_str!("corpus/unreachable_block.udp"));
    let f = expect(&r, Analysis::Reachability, Severity::Warn);
    assert_eq!(f.line, Some(5), "{f}"); // `dead:` label line
    assert_eq!(r.reachable, r.blocks - 1);
}

#[test]
fn uninitialized_read_names_register_and_line() {
    let r = report("uninit", include_str!("corpus/uninit_read.udp"));
    let f = expect(&r, Analysis::RegisterInit, Severity::Warn);
    assert!(f.message.contains("r5"), "{f}");
    assert_eq!(f.line, Some(4), "{f}"); // the storeb line
    assert_eq!(f.slot, Some(1));
}

#[test]
fn dead_write_is_flagged_at_its_slot() {
    let r = report("deadwrite", include_str!("corpus/dead_write.udp"));
    let f = expect(&r, Analysis::DeadWrite, Severity::Warn);
    assert!(f.message.contains("r3"), "{f}");
    assert_eq!(f.line, Some(3), "{f}");
    assert_eq!(f.slot, Some(0));
}

#[test]
fn provable_oob_store_is_an_error() {
    let r = report("oob", include_str!("corpus/oob_store.udp"));
    let f = expect(&r, Analysis::ScratchpadBounds, Severity::Error);
    assert_eq!(f.line, Some(4), "{f}"); // the stored line
    assert!(f.message.contains("always outside"), "{f}");
    assert!(r.gate().is_err());
}

#[test]
fn exitless_loop_diverges_and_is_rejected_by_the_lane() {
    let src = include_str!("corpus/infinite_loop.udp");
    let r = report("diverges", src);
    let f = expect(&r, Analysis::Termination, Severity::Error);
    assert!(f.message.contains("Diverges"), "{f}");
    // The gate is enforced end-to-end: the lane refuses the image.
    let (program, _) = assemble_text_with_map("diverges", src).unwrap();
    let image = assemble(&program).unwrap();
    let err = Lane::new().run(&image, &[], 0, RunConfig::default()).unwrap_err();
    assert!(matches!(err, LaneError::Unverified { .. }), "{err:?}");
}

#[test]
fn loop_invariant_exit_condition_is_flagged() {
    let r = report("invariant", include_str!("corpus/invariant_exit.udp"));
    let f = expect(&r, Analysis::Termination, Severity::Warn);
    assert!(f.message.contains("never writes"), "{f}");
}

#[test]
fn stream_consuming_loop_without_inrem_is_flagged() {
    let r = report("streamloop", include_str!("corpus/stream_loop_no_inrem.udp"));
    let f = expect(&r, Analysis::StreamBounds, Severity::Warn);
    assert!(f.message.contains("inrem"), "{f}");
    // The loop head is the `copy:` block.
    assert_eq!(f.line, Some(5), "{f}");
}

#[test]
fn empty_dispatch_group_is_an_error() {
    let r = report("emptygroup", include_str!("corpus/empty_group.udp"));
    let f = expect(&r, Analysis::DispatchTable, Severity::Error);
    assert!(f.message.contains("no entries"), "{f}");
    assert_eq!(f.line, Some(3), "{f}"); // `main:` label line
}

#[test]
fn incomplete_dispatch_table_reports_missing_symbols() {
    let r = report("incomplete", include_str!("corpus/incomplete_dispatch.udp"));
    let f = expect(&r, Analysis::DispatchTable, Severity::Warn);
    assert!(f.message.contains("covers 2 of 4"), "{f}");
    assert!(f.message.contains('2') && f.message.contains('3'), "{f}");
}

#[test]
fn unselectable_group_slot_is_flagged() {
    let r = report("unselectable", include_str!("corpus/unselectable_slot.udp"));
    let f = r
        .findings
        .iter()
        .find(|f| f.analysis == Analysis::DispatchTable && f.message.contains("never be selected"))
        .unwrap_or_else(|| panic!("expected unselectable-slot finding in:\n{r}"));
    assert_eq!(f.severity, Severity::Warn);
    assert!(f.message.contains("offset 9"), "{f}");
}

#[test]
fn impossible_output_contract_is_an_error() {
    let r = report("badout", include_str!("corpus/bad_output.udp"));
    let f = expect(&r, Analysis::OutputContract, Severity::Error);
    assert!(f.message.contains("r15"), "{f}");
    assert!(r.gate().is_err());
}

#[test]
fn write_to_r0_is_an_info_finding_only() {
    let r = report("writer0", include_str!("corpus/write_r0.udp"));
    let f = expect(&r, Analysis::RegisterInit, Severity::Info);
    assert!(f.message.contains("r0"), "{f}");
    assert_eq!(f.line, Some(3), "{f}");
    // Info findings alone do not block execution.
    assert_eq!(r.error_count(), 0);
    assert!(r.gate().is_ok());
}

#[test]
fn unboundable_loop_cannot_certify_a_max_bound() {
    let r = report("unboundable", include_str!("corpus/unboundable_loop.udp"));
    let f = expect(&r, Analysis::CycleBound, Severity::Warn);
    assert!(f.message.contains("cannot certify"), "{f}");
    assert_eq!(f.line, Some(8), "{f}"); // `spin:` — the progressless loop head
    let bound = r.cycle_bound.expect("min is still certifiable");
    assert_eq!(bound.max, None, "no affine max for a progressless loop");
    // Still only a warning: the program terminates dynamically.
    assert_eq!(r.error_count(), 0);
    assert!(r.gate().is_ok());
}

#[test]
fn stream_trip_count_overflowing_the_cycle_budget_is_flagged() {
    let r = report("budget", include_str!("corpus/budget_overflow_loop.udp"));
    let f = r
        .findings
        .iter()
        .find(|f| f.analysis == Analysis::CycleBound && f.message.contains("-cycle budget"))
        .unwrap_or_else(|| panic!("expected a budget-overflow warning in:\n{r}"));
    assert_eq!(f.severity, Severity::Warn);
    assert!(f.message.contains("exceeding the"), "{f}");
    // Anchored at the entry (`main:`). The bound itself certifies — it is
    // the budget comparison against it that fails.
    assert_eq!(f.line, Some(5), "{f}");
    let max = r.cycle_bound.unwrap().max.expect("affine max certifies");
    assert!(max.max_for(1 << 20) > 200_000_000, "{max}");
}

#[test]
fn dispatch_chain_over_the_per_bit_budget_is_flagged() {
    let r = report("perbit", include_str!("corpus/dispatch_per_bit.udp"));
    let f = r
        .findings
        .iter()
        .find(|f| f.analysis == Analysis::CycleBound && f.message.contains("per-bit"))
        .unwrap_or_else(|| panic!("expected a per-bit budget warning in:\n{r}"));
    assert_eq!(f.severity, Severity::Warn);
    assert_eq!(f.line, Some(6), "{f}"); // anchored at the entry (`main:`)
    let max = r.cycle_bound.unwrap().max.expect("affine max certifies");
    assert!(max.per_input_bit > 64, "{max}");
    // Over the per-bit budget but inside the total cycle budget: the
    // budget-overflow warning must NOT also fire.
    assert!(
        !r.findings.iter().any(|f| f.message.contains("exceeding the")),
        "per-bit fixture must stay under the total budget:\n{r}"
    );
}

/// Translation validation (ISSUE 9): tampering with an encoded word after
/// assembly makes the flat predecode table stale relative to
/// `decode_word`; re-verifying flags the owning block with an Error, and a
/// report carrying that Error gates `Lane::run` unless the caller opts
/// into `allow_unverified`.
#[test]
fn tampered_predecode_table_is_an_error_and_gates_the_lane() {
    use recode_udp::effclip;
    let src = include_str!("corpus/predecode_tamper.udp");
    let (program, map) = assemble_text_with_map("tamper", src).unwrap();
    let mut image = assemble(&program).unwrap();
    assert_eq!(image.verify_report.error_count(), 0, "fixture is clean pre-tamper");
    image.words[image.entry as usize] ^= 1 << 40;
    let placement = effclip::place(&program).unwrap();
    let mut r = verify_image(&program, &placement, &image, &VerifyConfig::default());
    r.attach_lines(&map);
    let f = expect(&r, Analysis::TranslationValidation, Severity::Error);
    assert!(f.message.contains("not equivalent"), "{f}");
    assert_eq!(f.line, Some(4), "{f}"); // `main:` — the tampered word's owner
    assert!(r.gate().is_err());
    // End-to-end gate: with the refreshed report attached, the lane refuses
    // the image...
    image.verify_report = r;
    let err = Lane::new().run(&image, &[7], 8, RunConfig::default()).unwrap_err();
    assert!(matches!(err, LaneError::Unverified { .. }), "{err:?}");
    // ...unless explicitly overridden. Execution itself is unaffected: the
    // lane runs the (still-intact) predecoded table, not the raw words.
    let cfg = RunConfig { allow_unverified: true, ..RunConfig::default() };
    let out = Lane::new().run(&image, &[7], 8, cfg).unwrap();
    assert_eq!(out.output, [7]);
}

#[test]
fn clean_program_produces_no_findings_at_all() {
    let src = ".entry main\nmain:\n    mov r2, r14\n    insymle r1, 1\n    storeb r1, r2, 0\n    limm r15, 1\n    halt\n";
    let r = report("clean", src);
    assert!(r.findings.is_empty(), "{r}");
    assert!(r.is_clean());
}
