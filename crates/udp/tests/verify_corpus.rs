//! Negative-test corpus for the static verifier (ISSUE 4).
//!
//! Each `.udp` file under `tests/corpus/` is deliberately broken in exactly
//! one interesting way; these tests assert that the corresponding analysis
//! fires with the right severity and anchors the finding to the right block
//! and source line. Together they cover every analysis the verifier runs:
//! reachability, register init (warn + the r0 info), dead writes,
//! scratchpad bounds, output contract, termination (no-exit and
//! invariant-exit loops), stream bounds, and dispatch tables (empty group,
//! incomplete table, unselectable slot).

use recode_udp::asm::assemble_text_with_map;
use recode_udp::lane::{Lane, LaneError, RunConfig};
use recode_udp::machine::assemble;
use recode_udp::verify::{Analysis, Finding, Severity, VerifyReport};

/// Assembles a corpus program and returns its line-annotated report.
fn report(name: &str, src: &str) -> VerifyReport {
    let (program, map) =
        assemble_text_with_map(name, src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let image = assemble(&program).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut r = image.verify_report.clone();
    r.attach_lines(&map);
    r
}

/// The first finding from `analysis` at `severity`, with context on failure.
fn expect(r: &VerifyReport, analysis: Analysis, severity: Severity) -> &Finding {
    r.findings
        .iter()
        .find(|f| f.analysis == analysis && f.severity == severity)
        .unwrap_or_else(|| panic!("expected {severity} {analysis:?} finding in:\n{r}"))
}

#[test]
fn unreachable_block_is_flagged_with_its_line() {
    let r = report("unreachable", include_str!("corpus/unreachable_block.udp"));
    let f = expect(&r, Analysis::Reachability, Severity::Warn);
    assert_eq!(f.line, Some(5), "{f}"); // `dead:` label line
    assert_eq!(r.reachable, r.blocks - 1);
}

#[test]
fn uninitialized_read_names_register_and_line() {
    let r = report("uninit", include_str!("corpus/uninit_read.udp"));
    let f = expect(&r, Analysis::RegisterInit, Severity::Warn);
    assert!(f.message.contains("r5"), "{f}");
    assert_eq!(f.line, Some(4), "{f}"); // the storeb line
    assert_eq!(f.slot, Some(1));
}

#[test]
fn dead_write_is_flagged_at_its_slot() {
    let r = report("deadwrite", include_str!("corpus/dead_write.udp"));
    let f = expect(&r, Analysis::DeadWrite, Severity::Warn);
    assert!(f.message.contains("r3"), "{f}");
    assert_eq!(f.line, Some(3), "{f}");
    assert_eq!(f.slot, Some(0));
}

#[test]
fn provable_oob_store_is_an_error() {
    let r = report("oob", include_str!("corpus/oob_store.udp"));
    let f = expect(&r, Analysis::ScratchpadBounds, Severity::Error);
    assert_eq!(f.line, Some(4), "{f}"); // the stored line
    assert!(f.message.contains("always outside"), "{f}");
    assert!(r.gate().is_err());
}

#[test]
fn exitless_loop_diverges_and_is_rejected_by_the_lane() {
    let src = include_str!("corpus/infinite_loop.udp");
    let r = report("diverges", src);
    let f = expect(&r, Analysis::Termination, Severity::Error);
    assert!(f.message.contains("Diverges"), "{f}");
    // The gate is enforced end-to-end: the lane refuses the image.
    let (program, _) = assemble_text_with_map("diverges", src).unwrap();
    let image = assemble(&program).unwrap();
    let err = Lane::new().run(&image, &[], 0, RunConfig::default()).unwrap_err();
    assert!(matches!(err, LaneError::Unverified { .. }), "{err:?}");
}

#[test]
fn loop_invariant_exit_condition_is_flagged() {
    let r = report("invariant", include_str!("corpus/invariant_exit.udp"));
    let f = expect(&r, Analysis::Termination, Severity::Warn);
    assert!(f.message.contains("never writes"), "{f}");
}

#[test]
fn stream_consuming_loop_without_inrem_is_flagged() {
    let r = report("streamloop", include_str!("corpus/stream_loop_no_inrem.udp"));
    let f = expect(&r, Analysis::StreamBounds, Severity::Warn);
    assert!(f.message.contains("inrem"), "{f}");
    // The loop head is the `copy:` block.
    assert_eq!(f.line, Some(5), "{f}");
}

#[test]
fn empty_dispatch_group_is_an_error() {
    let r = report("emptygroup", include_str!("corpus/empty_group.udp"));
    let f = expect(&r, Analysis::DispatchTable, Severity::Error);
    assert!(f.message.contains("no entries"), "{f}");
    assert_eq!(f.line, Some(3), "{f}"); // `main:` label line
}

#[test]
fn incomplete_dispatch_table_reports_missing_symbols() {
    let r = report("incomplete", include_str!("corpus/incomplete_dispatch.udp"));
    let f = expect(&r, Analysis::DispatchTable, Severity::Warn);
    assert!(f.message.contains("covers 2 of 4"), "{f}");
    assert!(f.message.contains('2') && f.message.contains('3'), "{f}");
}

#[test]
fn unselectable_group_slot_is_flagged() {
    let r = report("unselectable", include_str!("corpus/unselectable_slot.udp"));
    let f = r
        .findings
        .iter()
        .find(|f| f.analysis == Analysis::DispatchTable && f.message.contains("never be selected"))
        .unwrap_or_else(|| panic!("expected unselectable-slot finding in:\n{r}"));
    assert_eq!(f.severity, Severity::Warn);
    assert!(f.message.contains("offset 9"), "{f}");
}

#[test]
fn impossible_output_contract_is_an_error() {
    let r = report("badout", include_str!("corpus/bad_output.udp"));
    let f = expect(&r, Analysis::OutputContract, Severity::Error);
    assert!(f.message.contains("r15"), "{f}");
    assert!(r.gate().is_err());
}

#[test]
fn write_to_r0_is_an_info_finding_only() {
    let r = report("writer0", include_str!("corpus/write_r0.udp"));
    let f = expect(&r, Analysis::RegisterInit, Severity::Info);
    assert!(f.message.contains("r0"), "{f}");
    assert_eq!(f.line, Some(3), "{f}");
    // Info findings alone do not block execution.
    assert_eq!(r.error_count(), 0);
    assert!(r.gate().is_ok());
}

#[test]
fn clean_program_produces_no_findings_at_all() {
    let src = ".entry main\nmain:\n    mov r2, r14\n    insymle r1, 1\n    storeb r1, r2, 0\n    limm r15, 1\n    halt\n";
    let r = report("clean", src);
    assert!(r.findings.is_empty(), "{r}");
    assert!(r.is_clean());
}
