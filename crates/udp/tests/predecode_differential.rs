//! Differential suite for the predecoded interpreter and the JIT tier
//! (ISSUEs 5 and 10).
//!
//! `Lane::run` executes the image's JIT artifact when one is present (and
//! falls back to the predecoded interpreter otherwise or on bail);
//! `Lane::run_into_interp` forces the predecoded interpreter; and
//! `Lane::run_reference` re-decodes every code word at dispatch time. These
//! tests drive all three tiers over every builtin decoder program (on real
//! encoded streams and on corrupted ones) and over the full 16-program
//! negative corpus, asserting bit-identical outputs, cycle counts, opclass
//! attribution — and identical traps. Any divergence means a lowering
//! changed machine semantics. Under `RECODE_NO_JIT=1` (CI's
//! interpreter-parity leg) the same suite pins the two interpreter paths.

use recode_codec::pipeline::{Pipeline, PipelineConfig};
use recode_udp::asm::assemble_text_with_map;
use recode_udp::lane::{Lane, LaneError, RunConfig, RunResult};
use recode_udp::machine::{assemble, Image};
use recode_udp::progs::DshDecoder;

/// Asserts two tiers agreed exactly — on success (output, cycles,
/// dispatches, actions, opclass) and on failure (the same `LaneError`).
fn assert_tiers_agree(
    a: &Result<RunResult, LaneError>,
    b: &Result<RunResult, LaneError>,
    pair: &str,
    context: &str,
) {
    match (a, b) {
        (Ok(f), Ok(s)) => {
            assert_eq!(f.output, s.output, "{context} [{pair}]: outputs diverge");
            assert_eq!(f.cycles, s.cycles, "{context} [{pair}]: cycles diverge");
            assert_eq!(f.dispatches, s.dispatches, "{context} [{pair}]: dispatches diverge");
            assert_eq!(f.actions, s.actions, "{context} [{pair}]: actions diverge");
            assert_eq!(f.opclass, s.opclass, "{context} [{pair}]: opclass attribution diverges");
        }
        (Err(f), Err(s)) => assert_eq!(f, s, "{context} [{pair}]: traps diverge"),
        _ => panic!("{context} [{pair}]: one tier trapped, the other did not: {a:?} vs {b:?}"),
    }
}

/// Runs `image` over `input` on all three tiers — `run` (JIT when present),
/// the forced predecoded interpreter, and the word-at-a-time reference —
/// and asserts pairwise agreement. Returns the agreed result so callers can
/// chain stages.
fn differential(
    image: &Image,
    input: &[u8],
    input_bits: usize,
    cfg: RunConfig,
    context: &str,
) -> Result<RunResult, LaneError> {
    // When the JIT tier is live, images assembled here must actually carry
    // an artifact — otherwise this suite would silently degrade to a
    // two-way interpreter comparison and prove nothing about the JIT.
    if recode_codec::jit::enabled() {
        assert!(image.jit().is_some(), "{context}: image `{}` has no JIT artifact", image.name);
    }
    let fast = Lane::new().run(image, input, input_bits, cfg);
    let interp = {
        let mut out = Vec::new();
        Lane::new().run_into_interp(image, input, input_bits, cfg, &mut out).map(|s| RunResult {
            cycles: s.cycles,
            dispatches: s.dispatches,
            actions: s.actions,
            opclass: s.opclass,
            output: out,
        })
    };
    let slow = Lane::new().run_reference(image, input, input_bits, cfg);
    assert_tiers_agree(&fast, &interp, "run vs interp", context);
    assert_tiers_agree(&fast, &slow, "run vs reference", context);
    fast
}

/// Exhaustive static check: at every code address the predecoded record
/// must agree with a fresh word-at-a-time decode — same occupied actions,
/// same transition, and `None` exactly where `decode` fails.
fn assert_predecode_agrees_everywhere(image: &Image) {
    for addr in 0..image.words.len() as u32 {
        let slow = image.decode(addr);
        let fast = image.predecoded(addr);
        match (&slow, fast) {
            (Some(d), Some(p)) => {
                assert_eq!(d.actions.as_slice(), p.actions(), "{}@{addr}: actions", image.name);
                assert_eq!(d.transition, p.transition, "{}@{addr}: transition", image.name);
            }
            (None, None) => {}
            _ => panic!("{}@{addr}: decode()={slow:?} but predecoded()={fast:?}", image.name),
        }
    }
}

fn banded_index_stream(n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n * 4);
    for i in 0..n {
        let base = (i / 3) as u32;
        let col = base + (i % 3) as u32;
        out.extend_from_slice(&col.to_le_bytes());
    }
    out
}

/// Encodes `data` under `config`, then pushes every block through every
/// enabled stage image on both interpreter paths, chaining the agreed
/// output into the next stage exactly as `DshDecoder::decode_block` does.
fn differential_over_stream(config: PipelineConfig, data: &[u8]) {
    let pipe = Pipeline::train(config, data).unwrap();
    let stream = pipe.encode_stream(data).unwrap();
    let decoder = DshDecoder::new(config, pipe.table().map(|t| t.lengths.as_slice())).unwrap();
    let cfg = RunConfig::default();
    for img in [&decoder.huffman, &decoder.snappy, &decoder.delta].into_iter().flatten() {
        assert_predecode_agrees_everywhere(img);
    }
    let mut decoded = Vec::new();
    for (i, block) in stream.blocks.iter().enumerate() {
        let mut cur = block.payload.clone();
        let mut bits = block.bit_len;
        for (stage, img) in
            [("huffman", &decoder.huffman), ("snappy", &decoder.snappy), ("delta", &decoder.delta)]
        {
            let Some(img) = img else { continue };
            let r = differential(img, &cur, bits, cfg, &format!("block {i} stage {stage}"))
                .unwrap_or_else(|e| panic!("block {i} stage {stage} trapped: {e:?}"));
            cur = r.output;
            bits = cur.len() * 8;
        }
        decoded.extend_from_slice(&cur);
    }
    assert_eq!(decoded, data, "chained differential decode must equal encoder input");
}

#[test]
fn builtin_dsh_pipeline_paths_agree() {
    differential_over_stream(PipelineConfig::dsh_udp(), &banded_index_stream(6000));
}

#[test]
fn builtin_snappy_huffman_paths_agree() {
    let vals = [1.5f64, -0.25, 1.5, 3.0];
    let data: Vec<u8> = (0..3000).flat_map(|i| vals[i % 4].to_le_bytes()).collect();
    differential_over_stream(PipelineConfig::sh_udp(), &data);
}

#[test]
fn builtin_delta_snappy_paths_agree() {
    differential_over_stream(PipelineConfig::ds_udp(), &banded_index_stream(4000));
}

#[test]
fn corrupted_payloads_trap_identically() {
    // Resealed corruption slips past the CRC and reaches the lane; both
    // interpreter paths must agree on exactly how each mutation fails (or
    // doesn't — some flips decode to garbage without trapping).
    let data = banded_index_stream(4000);
    let config = PipelineConfig::dsh_udp();
    let pipe = Pipeline::train(config, &data).unwrap();
    let stream = pipe.encode_stream(&data).unwrap();
    let decoder = DshDecoder::new(config, pipe.table().map(|t| t.lengths.as_slice())).unwrap();
    let img = decoder.huffman.as_ref().unwrap();
    let cfg = RunConfig::default();
    let block = &stream.blocks[0];
    for i in 0..block.payload.len().min(24) {
        let mut payload = block.payload.clone();
        payload[i] ^= 0xA5;
        let _ = differential(img, &payload, block.bit_len, cfg, &format!("flip byte {i}"));
    }
    // Truncations exercise end-of-stream handling in both paths.
    for cut in [1usize, 3, 8, 17] {
        if cut >= block.bit_len {
            continue;
        }
        let bits = block.bit_len - cut;
        let payload = &block.payload[..bits.div_ceil(8)];
        let _ = differential(img, payload, bits, cfg, &format!("truncate {cut} bits"));
    }
}

/// The full ISSUE-4 negative corpus: deliberately broken programs, run with
/// the verifier gate bypassed. Whatever each one does — trap, halt with
/// output, burn the cycle budget — both interpreter paths must do the same.
#[test]
fn negative_corpus_paths_agree() {
    let corpus: [(&str, &str); 16] = [
        ("bad_output", include_str!("corpus/bad_output.udp")),
        ("budget_overflow_loop", include_str!("corpus/budget_overflow_loop.udp")),
        ("dead_write", include_str!("corpus/dead_write.udp")),
        ("dispatch_per_bit", include_str!("corpus/dispatch_per_bit.udp")),
        ("empty_group", include_str!("corpus/empty_group.udp")),
        ("incomplete_dispatch", include_str!("corpus/incomplete_dispatch.udp")),
        ("infinite_loop", include_str!("corpus/infinite_loop.udp")),
        ("invariant_exit", include_str!("corpus/invariant_exit.udp")),
        ("oob_store", include_str!("corpus/oob_store.udp")),
        ("predecode_tamper", include_str!("corpus/predecode_tamper.udp")),
        ("stream_loop_no_inrem", include_str!("corpus/stream_loop_no_inrem.udp")),
        ("unboundable_loop", include_str!("corpus/unboundable_loop.udp")),
        ("uninit_read", include_str!("corpus/uninit_read.udp")),
        ("unreachable_block", include_str!("corpus/unreachable_block.udp")),
        ("unselectable_slot", include_str!("corpus/unselectable_slot.udp")),
        ("write_r0", include_str!("corpus/write_r0.udp")),
    ];
    // A small cycle budget keeps the diverging programs cheap while still
    // requiring both paths to hit the limit at the same instant.
    let cfg = RunConfig { cycle_limit: 50_000, allow_unverified: true, ..Default::default() };
    let inputs: [&[u8]; 4] = [
        &[],
        &[0u8; 16],
        &[0xFF; 16],
        &[0x00, 0x01, 0x02, 0x03, 0x5A, 0xA5, 0x80, 0x7F, 0xFE, 0x01, 0x10, 0x20],
    ];
    for (name, src) in corpus {
        let (program, _) =
            assemble_text_with_map(name, src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let image = assemble(&program).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_predecode_agrees_everywhere(&image);
        for (k, input) in inputs.iter().enumerate() {
            let _ = differential(&image, input, input.len() * 8, cfg, &format!("{name} input {k}"));
            // A non-byte-aligned bit length exercises stream tail masking.
            if !input.is_empty() {
                let bits = input.len() * 8 - 3;
                let _ = differential(&image, input, bits, cfg, &format!("{name} input {k} ragged"));
            }
        }
    }
}
