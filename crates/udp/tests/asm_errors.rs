//! Assembler error-path coverage (ISSUE 4 satellite): every rejection must
//! carry the offending source line, because `recode verify-program` and the
//! verifier's line-annotated findings are only as good as the assembler's
//! line tracking.

use recode_udp::asm::{assemble_text, assemble_text_with_map, AsmError};
use recode_udp::isa::{Transition, MAX_ACTIONS_PER_BLOCK};

fn fails(src: &str) -> AsmError {
    assemble_text("t", src).expect_err("expected assembly to fail")
}

#[test]
fn unknown_opcode_reports_its_line() {
    let e = fails(".entry m\nm:\n    limm r1, 0\n    frobnicate r1\n    halt\n");
    assert_eq!(e.line, 4, "{e}");
    assert!(e.msg.contains("frobnicate"), "{e}");
}

#[test]
fn duplicate_label_reports_the_second_definition() {
    let e = fails(".entry m\nm:\n    halt\nm:\n    halt\n");
    assert_eq!(e.line, 4, "{e}");
    assert!(e.msg.contains("duplicate"), "{e}");
}

#[test]
fn undefined_jump_target_reports_the_jump_line() {
    let e = fails(".entry m\nm:\n    limm r15, 0\n    jump nowhere\n");
    assert_eq!(e.line, 4, "{e}");
    assert!(e.msg.contains("nowhere"), "{e}");
}

#[test]
fn undefined_branch_target_reports_the_branch_line() {
    let e = fails(".entry m\nm:\n    beq r1, r0, gone\n    halt\n");
    assert_eq!(e.line, 3, "{e}");
    assert!(e.msg.contains("gone"), "{e}");
}

#[test]
fn missing_entry_is_a_file_level_error() {
    let e = fails("m:\n    limm r15, 0\n    halt\n");
    assert!(e.msg.contains(".entry"), "{e}");
}

#[test]
fn entry_naming_an_undefined_label_fails() {
    let e = fails(".entry ghost\nm:\n    halt\n");
    assert!(e.msg.contains("ghost"), "{e}");
}

#[test]
fn falling_off_the_end_reports_the_dangling_code() {
    let e = fails(".entry m\nm:\n    limm r1, 5\n");
    assert!(e.line > 0, "fall-off error lost its line: {e}");
    assert!(e.msg.contains("fall"), "{e}");
}

#[test]
fn long_action_runs_split_exactly_at_the_block_limit() {
    // 9 actions = 4 + 4 + 1 across three chunks joined by synthesized jumps.
    use std::fmt::Write as _;
    let mut body = String::new();
    for i in 0..9 {
        writeln!(body, "    limm r{}, {i}", (i % 13) + 1).unwrap();
    }
    let src = format!(".entry m\nm:\n{body}    limm r15, 0\n    halt\n");
    let (program, map) = assemble_text_with_map("t", &src).unwrap();
    // 10 actions total -> 3 chunks of 4/4/2, chained by synthesized jumps
    // (continuation ids are allocated tail-first, so follow the chain).
    assert_eq!(program.blocks.len(), 3);
    let c0 = program.entry as usize;
    let Transition::Jump(n1) = program.blocks[c0].transition else {
        panic!("chunk 0 must jump to its continuation");
    };
    let c1 = n1 as usize;
    let Transition::Jump(n2) = program.blocks[c1].transition else {
        panic!("chunk 1 must jump to its continuation");
    };
    let c2 = n2 as usize;
    assert_eq!(program.blocks[c0].actions.len(), MAX_ACTIONS_PER_BLOCK);
    assert_eq!(program.blocks[c1].actions.len(), MAX_ACTIONS_PER_BLOCK);
    assert_eq!(program.blocks[c2].actions.len(), 2);
    // The source map follows the split: chunk 0 starts at the label (line 2),
    // continuation chunks are synthesized (label_line 0) but their actions
    // keep real lines.
    assert_eq!(map.blocks[c0].label_line, 2);
    assert_eq!(map.blocks[c0].action_lines, vec![3, 4, 5, 6]);
    assert_eq!(map.blocks[c1].label_line, 0);
    assert_eq!(map.blocks[c1].action_lines, vec![7, 8, 9, 10]);
    assert_eq!(map.blocks[c2].action_lines, vec![11, 12]);
    // Continuation jumps are synthesized, so chunk 0's transition has no
    // source line; the final chunk's halt does (line 13).
    assert_eq!(map.blocks[c0].transition_line, 0);
    assert_eq!(map.blocks[c2].transition_line, 13);
}

#[test]
fn source_map_spans_cover_label_through_transition() {
    let src = ".entry m\nm:\n    limm r15, 0\n    halt\n";
    let (_, map) = assemble_text_with_map("t", src).unwrap();
    assert_eq!(map.span(0), Some((2, 4)));
    assert_eq!(map.line_for(0, Some(0)), Some(3));
    assert_eq!(map.line_for(0, None), Some(2));
}

#[test]
fn operand_count_errors_carry_the_line() {
    let e = fails(".entry m\nm:\n    limm r1\n    halt\n");
    assert_eq!(e.line, 3, "{e}");
    assert!(e.msg.contains("expects"), "{e}");
}

#[test]
fn bad_register_and_bad_group_report_their_lines() {
    let e = fails(".entry m\nm:\n    limm r16, 0\n    halt\n");
    assert_eq!(e.line, 3, "{e}");
    let e = fails(".entry m\nm:\n    dispatch.sym 2, nosuch\n");
    assert_eq!(e.line, 3, "{e}");
    assert!(e.msg.contains("nosuch"), "{e}");
}
