//! W^X page-lifecycle coverage for the lane JIT tier (ISSUE 10).
//!
//! Pins the three safety properties the JIT's page management promises:
//!
//! 1. published code is never simultaneously writable and executable —
//!    `/proc/self/maps` holds no `rwx` mapping and the codec's violation
//!    counter stays zero;
//! 2. executable pages are reclaimed when the owning image is retired —
//!    `live_exec_bytes` falls back to its baseline once the last clone of
//!    an image drops;
//! 3. a poisoned (failed) compile degrades to the interpreter tier with a
//!    recorded `CompileEvent { ok: false }`, and a tampered buffer is
//!    caught twice: the per-run sentinel gates `Lane::run` with
//!    `JitInvalid`, and a re-verify flags a translation-validation `Error`.
//!
//! The whole file is x86-64 Linux only (the only platform that publishes
//! pages) and every test early-outs under `RECODE_NO_JIT=1`, so CI's
//! interpreter-parity leg still compiles and runs it as a no-op.
#![cfg(all(target_arch = "x86_64", target_os = "linux"))]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use recode_codec::jit::exec::{live_exec_bytes, poison_next_publish_for_test, wx_violations};
use recode_codec::jit::{set_compile_hook, CompileEvent};
use recode_udp::isa::{Action, Block, Transition, Width};
use recode_udp::lane::{Lane, LaneError, RunConfig};
use recode_udp::machine::assemble;
use recode_udp::program::{Program, ProgramBuilder};
use recode_udp::verify::{verify_image, Analysis, Severity, VerifyConfig};

/// The publish-poison hook and the page counters are process-global, so
/// tests that touch them serialize here.
static GATE: Mutex<()> = Mutex::new(());

/// Failed-compile reports observed by the process-wide hook (the hook is
/// install-once, so all tests share these counters).
static FAILED_COMPILES: AtomicU64 = AtomicU64::new(0);
static FAILED_CODE_BYTES: AtomicUsize = AtomicUsize::new(0);

fn install_probe_hook() {
    fn probe(ev: &CompileEvent) {
        if !ev.ok {
            FAILED_COMPILES.fetch_add(1, Ordering::SeqCst);
            FAILED_CODE_BYTES.fetch_add(ev.code_bytes, Ordering::SeqCst);
        }
    }
    // First installer wins; every test calls this so ordering doesn't
    // matter.
    let _ = set_compile_hook(probe);
}

/// A store-then-halt program small enough to assemble in every test.
fn tiny_program() -> Program {
    let mut pb = ProgramBuilder::new("jit-lifecycle");
    let start = pb.block(Block {
        actions: vec![
            Action::LoadImm { rd: 1, imm: 0x5A },
            Action::Store { rs: 1, base: 14, offset: 0, width: Width::B1 },
            Action::LoadImm { rd: 15, imm: 1 },
        ],
        transition: Transition::Halt,
    });
    pb.entry(start);
    pb.build().unwrap()
}

#[test]
fn published_pages_are_never_writable_and_executable() {
    if !recode_codec::jit::enabled() {
        return;
    }
    let _g = GATE.lock().unwrap();
    let image = assemble(&tiny_program()).unwrap();
    assert!(image.jit().is_some(), "x86-64 assemble must produce a JIT artifact");
    // The kernel-visible property: with live JIT pages in the process, no
    // mapping is rwx.
    let maps = std::fs::read_to_string("/proc/self/maps").unwrap();
    for line in maps.lines() {
        let perms = line.split_whitespace().nth(1).unwrap_or("");
        assert!(!perms.starts_with("rwx"), "W^X violated by mapping: {line}");
    }
    // And the library-level ledger agrees nothing ever asked for RWX.
    assert_eq!(wx_violations(), 0, "no RWX protection request may ever be made");
}

#[test]
fn retiring_an_image_reclaims_its_executable_pages() {
    if !recode_codec::jit::enabled() {
        return;
    }
    let _g = GATE.lock().unwrap();
    let baseline = live_exec_bytes();
    let image = assemble(&tiny_program()).unwrap();
    let jit_bytes = image.jit().expect("artifact").code_bytes();
    assert!(jit_bytes > 0);
    assert!(live_exec_bytes() >= baseline + jit_bytes, "publishing must grow the live ledger");
    // Clones share the artifact: no further pages, and dropping one clone
    // reclaims nothing.
    let clone = image.clone();
    let with_image = live_exec_bytes();
    drop(clone);
    assert_eq!(live_exec_bytes(), with_image, "a clone drop must not unmap shared pages");
    drop(image);
    assert_eq!(
        live_exec_bytes(),
        baseline,
        "retiring the last owner must return the ledger to baseline"
    );
}

#[test]
fn poisoned_compile_falls_back_to_interpreter_with_a_recorded_event() {
    if !recode_codec::jit::enabled() {
        return;
    }
    let _g = GATE.lock().unwrap();
    install_probe_hook();
    let failures_before = FAILED_COMPILES.load(Ordering::SeqCst);
    poison_next_publish_for_test(1);
    let image = assemble(&tiny_program()).unwrap();
    assert!(image.jit().is_none(), "a poisoned publish must not attach an artifact");
    assert_eq!(
        FAILED_COMPILES.load(Ordering::SeqCst),
        failures_before + 1,
        "the failed compile must be reported to the hook"
    );
    assert_eq!(FAILED_CODE_BYTES.load(Ordering::SeqCst), 0, "failed compiles publish nothing");
    // The image still runs — interpreter tier, bit-exact.
    let r = Lane::new().run(&image, &[], 0, RunConfig::default()).unwrap();
    assert_eq!(r.output, vec![0x5A]);
}

#[test]
fn tampered_artifact_is_gated_at_run_time_and_flagged_by_reverify() {
    if !recode_codec::jit::enabled() {
        return;
    }
    let _g = GATE.lock().unwrap();
    let program = tiny_program();
    let placement = recode_udp::effclip::place(&program).unwrap();
    let image = recode_udp::machine::encode(&program, &placement).unwrap();
    let jit = image.jit().expect("artifact");

    // Pre-tamper: the sentinel passes, verify is clean, and the lane runs
    // the compiled tier.
    assert_eq!(image.verify_report.error_count(), 0);
    let r = Lane::new().run(&image, &[], 0, RunConfig::default()).unwrap();
    assert_eq!(r.output, vec![0x5A]);

    // Tamper with the first code byte through the test-only choke point
    // (the only way to write RX pages — mprotect round-trip, never RWX).
    jit.corrupt_for_test(0, 0xFF);

    // Run-time gate: the cheap sentinel catches the damage before any
    // compiled byte executes.
    let err = Lane::new().run(&image, &[], 0, RunConfig::default()).unwrap_err();
    assert_eq!(err, LaneError::JitInvalid);
    assert!(err.to_string().contains("integrity"), "actionable message: {err}");

    // Static gate: re-verification recomputes the full digest and reports
    // a translation-validation Error, which itself gates future runs.
    let report = verify_image(&program, &placement, &image, &VerifyConfig::default());
    let finding = report
        .findings
        .iter()
        .find(|f| f.analysis == Analysis::TranslationValidation && f.severity == Severity::Error)
        .expect("tampered code digest must surface as an Error finding");
    assert!(finding.message.contains("tampered"), "diagnosis names the cause: {finding:?}");
}
