//! Criterion bench behind Figs. 16/17: the analytic power/performance model
//! evaluation itself (cheap by construction — documents that regenerating
//! the paper's power figures is instantaneous once measurements exist).

use criterion::{criterion_group, criterion_main, Criterion};
use recode_core::perfmodel::SpmvPerfModel;
use recode_core::{PowerSavings, SystemConfig};

fn bench_models(c: &mut Criterion) {
    let ddr = SystemConfig::ddr4();
    let hbm = SystemConfig::hbm2();
    c.bench_function("fig16_power_savings_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for bpnnz in [1.0f64, 2.0, 3.5, 5.0, 8.0, 12.0] {
                acc += PowerSavings::compute(&ddr, bpnnz, 24e9).net_saving_w;
                acc += PowerSavings::compute(&hbm, bpnnz, 24e9).net_saving_w;
            }
            std::hint::black_box(acc)
        });
    });
    c.bench_function("fig14_perf_model_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for bpnnz in [1.0f64, 2.0, 3.5, 5.0, 8.0, 12.0] {
                let m = SpmvPerfModel { bytes_per_nnz: bpnnz, udp_out_bps_per_accel: 24e9 };
                for r in m.evaluate_all(&ddr) {
                    acc += r.gflops;
                }
            }
            std::hint::black_box(acc)
        });
    });
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
