//! Criterion bench behind Figs. 14/15: the end-to-end functional
//! heterogeneous SpMV (UDP-decode every block on the simulator, then
//! multiply) versus the plain CPU kernel.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use recode_codec::pipeline::MatrixCodecConfig;
use recode_core::{RecodedSpmv, SystemConfig};
use recode_sparse::prelude::*;
use recode_sparse::spmv::SpmvKernel;

fn bench_end_to_end(c: &mut Criterion) {
    let a = generate(
        &GenSpec::Stencil2D {
            nx: 100,
            ny: 100,
            points: 5,
            values: ValueModel::MixedRepeated { distinct: 32 },
        },
        9,
    );
    let x = vec![1.0f64; a.ncols()];
    let sys = SystemConfig::ddr4();
    let recoded = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();

    let mut group = c.benchmark_group("fig14_hetero_spmv");
    group.throughput(Throughput::Bytes((a.nnz() * 12) as u64));
    group.bench_function("plain_cpu_spmv", |b| {
        let mut y = vec![0.0; a.nrows()];
        b.iter(|| recode_sparse::spmv::spmv_into(&a, &x, &mut y));
    });
    group.bench_function("recoded_spmv_via_udp_sim", |b| {
        b.iter(|| recoded.spmv(&sys, SpmvKernel::Serial, &x).unwrap());
    });
    group.bench_function("sw_decompress_only", |b| {
        b.iter(|| recoded.decompress_via_software().unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion.sample_size(10);
    targets = bench_end_to_end
}
criterion_main!(benches);
