//! Telemetry overhead bench: the trace-off pipeline must stay within a few
//! percent of its pre-instrumentation cost, and the gap between an untraced
//! and a fully traced run shows what `--trace` actually buys/costs.
//!
//! Three measurements over the same compressed matrix:
//! * `spmv_untraced` — the default path (`Option<&mut Telemetry>` is `None`:
//!   no clocks, no event sink, only the constant-cost opcode-class tallies
//!   inside the lane interpreter).
//! * `spmv_traced`  — full spans + per-block events + traffic ledger.
//! * `lane_decode_block` — the innermost always-on cost: one 8 KB block
//!   through the DSH interpreter, opcode-class accounting included.
//! * `recorder_overhead/*` — the same untraced run with the flight
//!   recorder off (one relaxed atomic load per would-be event) vs on
//!   (thread-local buffering into the global ring). The off/on gap is the
//!   price of `--chrome-trace`; the off path must be indistinguishable
//!   from `spmv_untraced`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use recode_codec::pipeline::MatrixCodecConfig;
use recode_core::exec::RecodedSpmv;
use recode_core::telemetry::Telemetry;
use recode_core::SystemConfig;
use recode_sparse::gen::{generate, GenSpec, ValueModel};
use recode_udp::progs::DshDecoder;
use recode_udp::Lane;

fn bench_matrix() -> recode_sparse::Csr {
    generate(
        &GenSpec::Stencil2D {
            nx: 80,
            ny: 80,
            points: 9,
            values: ValueModel::QuantizedGaussian { levels: 48 },
        },
        2019,
    )
}

fn bench_trace_off_vs_on(c: &mut Criterion) {
    let a = bench_matrix();
    let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
    let sys = SystemConfig::ddr4();

    let mut group = c.benchmark_group("telemetry_overhead");
    group.throughput(Throughput::Bytes((a.nnz() * 12) as u64));
    group.bench_function("spmv_untraced", |b| {
        b.iter(|| {
            let (_, stats) = r.decompress_via_udp(&sys).unwrap();
            std::hint::black_box(stats.accel.makespan_cycles);
        });
    });
    group.bench_function("spmv_traced", |b| {
        b.iter(|| {
            let mut tel = Telemetry::new();
            let (_, stats) = r.decompress_via_udp_traced(&sys, None, Some(&mut tel)).unwrap();
            std::hint::black_box((stats.accel.makespan_cycles, tel.block_events().len()));
        });
    });
    group.finish();
}

fn bench_recorder_off_vs_on(c: &mut Criterion) {
    use recode_core::recorder;
    let a = bench_matrix();
    let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
    let sys = SystemConfig::ddr4();

    let mut group = c.benchmark_group("recorder_overhead");
    group.throughput(Throughput::Bytes((a.nnz() * 12) as u64));
    recorder::disable();
    group.bench_function("spmv_recorder_off", |b| {
        b.iter(|| {
            let (_, stats) = r.decompress_via_udp(&sys).unwrap();
            std::hint::black_box(stats.accel.makespan_cycles);
        });
    });
    recorder::enable(recorder::DEFAULT_CAPACITY);
    group.bench_function("spmv_recorder_on", |b| {
        b.iter(|| {
            let (_, stats) = r.decompress_via_udp(&sys).unwrap();
            std::hint::black_box(stats.accel.makespan_cycles);
        });
    });
    let events = recorder::drain();
    std::hint::black_box(events.len());
    recorder::disable();
    group.finish();
}

fn bench_lane_decode(c: &mut Criterion) {
    let a = bench_matrix();
    let r = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
    let cm = r.compressed();
    let decoder = DshDecoder::new(cm.config.index, cm.index_table_lengths.as_deref()).unwrap();
    let block = &cm.index_stream.blocks[0];
    c.bench_function("lane_decode_block", |b| {
        let mut lane = Lane::new();
        b.iter(|| {
            let o = decoder.decode_block(&mut lane, block).unwrap();
            std::hint::black_box((o.cycles, o.opclass.total()));
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion.sample_size(20);
    targets = bench_trace_off_vs_on, bench_recorder_off_vs_on, bench_lane_decode
}
criterion_main!(benches);
