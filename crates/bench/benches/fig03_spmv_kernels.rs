//! Criterion bench behind Fig. 3: the three SpMV kernels on a
//! bandwidth-bound stencil matrix. Confirms on the host what the paper's
//! figure models: SpMV throughput is set by memory traffic, so all kernels
//! converge once the matrix outsizes cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use recode_sparse::prelude::*;
use recode_sparse::spmv::spmv_with_into;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig03_spmv_kernels");
    for side in [128usize, 512] {
        let a = generate(
            &GenSpec::Stencil2D {
                nx: side,
                ny: side,
                points: 9,
                values: ValueModel::QuantizedGaussian { levels: 256 },
            },
            3,
        );
        let x = vec![1.0f64; a.ncols()];
        let mut y = vec![0.0f64; a.nrows()];
        group.throughput(Throughput::Bytes((a.nnz() * 12) as u64));
        for kernel in SpmvKernel::ALL {
            group.bench_with_input(BenchmarkId::new(format!("{kernel:?}"), a.nnz()), &a, |b, a| {
                b.iter(|| spmv_with_into(kernel, a, &x, &mut y));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion.sample_size(20);
    targets = bench_kernels
}
criterion_main!(benches);
