//! Hot-path microbenches (criterion flavor of `bench_hotpath`):
//! * `lane_decode_block` — one 8 KB DSH block through the lane interpreter
//!   on a reused lane (the per-dispatch path this PR makes allocation-free);
//! * `huffman_cpu_block` — one 8 KB block through the CPU Huffman stage
//!   (exercises the cached `FlatDecoder` instead of a per-call rebuild);
//! * `snappy_cpu_block` — one 32 KB block through the CPU Snappy stage
//!   (widened copy loops).
//!
//! The JSON-emitting `bench_hotpath` *binary* is the before/after record;
//! this bench is for local `cargo bench` iteration on the same loops.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use recode_codec::pipeline::{Pipeline, PipelineConfig};
use recode_udp::progs::DshDecoder;
use recode_udp::Lane;

fn banded_index_stream(n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n * 4);
    for i in 0..n {
        let base = (i / 3) as u32;
        let col = base + (i % 3) as u32;
        out.extend_from_slice(&col.to_le_bytes());
    }
    out
}

fn bench_lane_decode(c: &mut Criterion) {
    let data = banded_index_stream(32_000);
    let cfg = PipelineConfig::dsh_udp();
    let pipe = Pipeline::train(cfg, &data).unwrap();
    let stream = pipe.encode_stream(&data).unwrap();
    let decoder = DshDecoder::new(cfg, pipe.table().map(|t| t.lengths.as_slice())).unwrap();
    let block = &stream.blocks[0];

    let mut group = c.benchmark_group("hotpath");
    group.throughput(Throughput::Bytes(cfg.block_bytes as u64));
    group.bench_function("lane_decode_block", |b| {
        let mut lane = Lane::new();
        b.iter(|| {
            let o = decoder.decode_block(&mut lane, block).unwrap();
            std::hint::black_box(o.output.len());
        });
    });
    group.finish();
}

fn bench_cpu_stages(c: &mut Criterion) {
    let data = banded_index_stream(32_000);
    let huff_cfg = PipelineConfig {
        delta: false,
        snappy: false,
        huffman: true,
        block_bytes: 8192,
        huffman_sample_every: 3,
    };
    let huff_pipe = Pipeline::train(huff_cfg, &data).unwrap();
    let huff_stream = huff_pipe.encode_stream(&data).unwrap();
    let huff_block = &huff_stream.blocks[0];

    let snap_cfg = PipelineConfig::snappy_cpu();
    let snap_pipe = Pipeline::train(snap_cfg, &data).unwrap();
    let snap_stream = snap_pipe.encode_stream(&data).unwrap();
    let snap_block = &snap_stream.blocks[0];

    let mut group = c.benchmark_group("hotpath");
    group.throughput(Throughput::Bytes(huff_cfg.block_bytes as u64));
    group.bench_function("huffman_cpu_block", |b| {
        b.iter(|| {
            let out = huff_pipe.decode_block(huff_block).unwrap();
            std::hint::black_box(out.len());
        });
    });
    group.throughput(Throughput::Bytes(snap_cfg.block_bytes as u64));
    group.bench_function("snappy_cpu_block", |b| {
        b.iter(|| {
            let out = snap_pipe.decode_block(snap_block).unwrap();
            std::hint::black_box(out.len());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lane_decode, bench_cpu_stages);
criterion_main!(benches);
