//! Ablation bench: EffCLiP placement cost and packing density for the real
//! decoder programs (the paper's claim: dense utilization with a plain
//! integer-add "hash").

use criterion::{criterion_group, criterion_main, Criterion};
use recode_udp::asm::assemble_text;
use recode_udp::effclip;

fn bench_placement(c: &mut Criterion) {
    // The snappy program exercises a dense 256-way group + many chains.
    c.bench_function("ablation_effclip_place_snappy_program", |b| {
        b.iter(|| {
            let image = recode_udp::progs::snappy::build().unwrap();
            std::hint::black_box(image.utilization)
        });
    });

    // Report utilization once, as a bench side effect.
    let image = recode_udp::progs::snappy::build().unwrap();
    eprintln!("snappy program EffCLiP utilization: {:.3}", image.utilization);
    let delta = recode_udp::progs::delta::build().unwrap();
    eprintln!("delta  program EffCLiP utilization: {:.3}", delta.utilization);

    c.bench_function("ablation_effclip_verify", |b| {
        let program = assemble_text("delta", recode_udp::progs::delta::SOURCE).unwrap();
        let placement = effclip::place(&program).unwrap();
        b.iter(|| effclip::verify(&program, &placement).unwrap());
    });
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
