//! Ablation bench: host SpMV throughput of the related-work formats vs CSR.
//! Complements the `ablation_formats` binary (which compares *sizes*) with
//! the compute side: the varint format shows the inline-decode tax that
//! motivates offloading recoding to the UDP.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use recode_sparse::formats::{BitmaskBlockCsr, Ell, SellCs, VarintCsr};
use recode_sparse::prelude::*;
use recode_sparse::spmv::spmv_with_into;

fn bench_format_spmv(c: &mut Criterion) {
    let a = generate(
        &GenSpec::FemBand {
            n: 20_000,
            band: 12,
            fill: 0.5,
            values: ValueModel::QuantizedGaussian { levels: 512 },
        },
        11,
    );
    let x: Vec<f64> = (0..a.ncols()).map(|i| 1.0 / (1.0 + (i % 17) as f64)).collect();
    let mut y = vec![0.0f64; a.nrows()];

    let ell = Ell::from_csr(&a).unwrap();
    let sell = SellCs::from_csr(&a, 32, 512).unwrap();
    let bb = BitmaskBlockCsr::from_csr(&a).unwrap();
    let v = VarintCsr::from_csr(&a).unwrap();

    let mut group = c.benchmark_group("ablation_formats_spmv");
    group.throughput(Throughput::Bytes((a.nnz() * 12) as u64));
    group.bench_function("csr_serial", |b| {
        b.iter(|| spmv_with_into(SpmvKernel::Serial, &a, &x, &mut y));
    });
    group.bench_function("ellpack", |b| b.iter(|| ell.spmv_into(&x, &mut y)));
    group.bench_function("sell_32_512", |b| b.iter(|| sell.spmv_into(&x, &mut y)));
    group.bench_function("bitmask_4x4", |b| b.iter(|| bb.spmv_into(&x, &mut y)));
    group.bench_function("varint_csr_inline_decode", |b| b.iter(|| v.spmv_into(&x, &mut y)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion.sample_size(20);
    targets = bench_format_spmv
}
criterion_main!(benches);
