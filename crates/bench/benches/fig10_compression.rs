//! Criterion bench behind Figs. 10/11: whole-matrix compression under the
//! three codec configurations (throughput of the encode side, which the
//! paper performs offline on the CPU).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use recode_codec::pipeline::{CompressedMatrix, MatrixCodecConfig};
use recode_sparse::prelude::*;

fn bench_compression(c: &mut Criterion) {
    let a = generate(
        &GenSpec::FemBand {
            n: 8_000,
            band: 16,
            fill: 0.5,
            values: ValueModel::QuantizedGaussian { levels: 2048 },
        },
        7,
    );
    let raw_bytes = (a.nnz() * 12) as u64;
    let mut group = c.benchmark_group("fig10_compression");
    group.throughput(Throughput::Bytes(raw_bytes));
    for (name, cfg) in [
        ("cpu_snappy_32k", MatrixCodecConfig::cpu_snappy()),
        ("udp_delta_snappy_8k", MatrixCodecConfig::udp_ds()),
        ("udp_dsh_8k", MatrixCodecConfig::udp_dsh()),
    ] {
        group.bench_with_input(BenchmarkId::new(name, a.nnz()), &a, |b, a| {
            b.iter(|| CompressedMatrix::compress(a, cfg).unwrap());
        });
    }
    group.finish();
}

fn bench_decompression(c: &mut Criterion) {
    let a = generate(
        &GenSpec::FemBand {
            n: 8_000,
            band: 16,
            fill: 0.5,
            values: ValueModel::QuantizedGaussian { levels: 2048 },
        },
        7,
    );
    let mut group = c.benchmark_group("fig10_sw_decompression");
    group.throughput(Throughput::Bytes((a.nnz() * 12) as u64));
    for (name, cfg) in [
        ("cpu_snappy_32k", MatrixCodecConfig::cpu_snappy()),
        ("udp_dsh_8k", MatrixCodecConfig::udp_dsh()),
    ] {
        let cm = CompressedMatrix::compress(&a, cfg).unwrap();
        group.bench_with_input(BenchmarkId::new(name, a.nnz()), &cm, |b, cm| {
            b.iter(|| cm.decompress().unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion.sample_size(10);
    targets = bench_compression, bench_decompression
}
criterion_main!(benches);
