//! Criterion bench behind Figs. 12/13: simulator cost of UDP block decoding
//! (how fast the *host* can run lane programs — the simulated throughput
//! itself comes from cycle counts, printed by the fig12 binary).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use recode_codec::pipeline::{Pipeline, PipelineConfig};
use recode_udp::progs::DshDecoder;
use recode_udp::Lane;

fn banded_index_stream(n: usize) -> Vec<u8> {
    (0..n).flat_map(|i| (((i / 3) as u32) * 2 + (i % 3) as u32).to_le_bytes()).collect()
}

fn bench_udp_stage_decode(c: &mut Criterion) {
    let data = banded_index_stream(64 * 1024);
    let config = PipelineConfig::dsh_udp();
    let pipe = Pipeline::train(config, &data).unwrap();
    let stream = pipe.encode_stream(&data).unwrap();
    let decoder = DshDecoder::new(config, pipe.table().map(|t| t.lengths.as_slice())).unwrap();

    let mut group = c.benchmark_group("fig12_udp_decode");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("dsh_all_blocks_one_lane", |b| {
        let mut lane = Lane::new();
        b.iter(|| {
            for block in &stream.blocks {
                let o = decoder.decode_block(&mut lane, block).unwrap();
                std::hint::black_box(o.cycles);
            }
        });
    });
    group.finish();
}

fn bench_program_compile(c: &mut Criterion) {
    // Per-matrix Huffman program compilation (the recoding "software
    // update" cost when a new matrix arrives).
    let data = banded_index_stream(8 * 1024);
    let pipe = Pipeline::train(PipelineConfig::dsh_udp(), &data).unwrap();
    let lengths = pipe.table().unwrap().lengths.clone();
    c.bench_function("fig12_huffman_program_compile", |b| {
        b.iter(|| recode_udp::progs::huffman::compile(&lengths).unwrap());
    });
    c.bench_function("fig12_snappy_program_build", |b| {
        b.iter(|| recode_udp::progs::snappy::build().unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion.sample_size(10);
    targets = bench_udp_stage_decode, bench_program_compile
}
criterion_main!(benches);
