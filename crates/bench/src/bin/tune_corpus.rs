//! Auto-tuner study: modeled end-to-end cycles for the tuned
//! (kernel, stages, block) choice versus the untuned default
//! (row-parallel CSR over full-DSH 8 KiB blocks), across the seven
//! representative matrices plus a corpus sample. The speedup column is
//! the headline number EXPERIMENTS.md quotes for `recode tune`.

use recode_bench::{corpus_entries, maybe_dump_json, parse_args};
use recode_core::seven;
use recode_core::tune::{default_candidate, tune_matrix, TuneOptions};
use recode_core::SystemConfig;
use recode_sparse::util::geometric_mean;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    family: String,
    nnz: usize,
    kernel: String,
    stages: String,
    block_bytes: usize,
    tuned_cycles: u64,
    default_cycles: u64,
    tuned_bpnnz: f64,
    default_bpnnz: f64,
    speedup: f64,
}

fn main() {
    let mut args = parse_args();
    if args.sample.is_none() {
        args.sample = Some(24);
    }
    let sys = SystemConfig::ddr4();
    let opts = TuneOptions { seed: args.seed, trials: 0, sys };

    let mut mats: Vec<(String, String, recode_sparse::Csr)> =
        seven::generate_all(args.rep_scale, args.seed)
            .into_iter()
            .map(|(rep, m)| (rep.name.to_string(), rep.family.to_string(), m))
            .collect();
    for e in corpus_entries(&args) {
        let a = e.generate();
        mats.push((e.name.clone(), e.family.to_string(), a));
    }

    let rows: Vec<Row> = mats
        .iter()
        .map(|(name, family, a)| {
            let tuned =
                tune_matrix(a, &opts).unwrap_or_else(|e| panic!("{name}: tune failed: {e}")).config;
            let base = default_candidate(a, &sys)
                .unwrap_or_else(|e| panic!("{name}: default model failed: {e}"));
            let tuned_cycles = tuned.modeled_total_cycles();
            let default_cycles = base.total_cycles();
            Row {
                name: name.clone(),
                family: family.clone(),
                nnz: a.nnz(),
                kernel: tuned.kernel.name().to_string(),
                stages: tuned.stages.name().to_string(),
                block_bytes: tuned.block_bytes,
                tuned_cycles,
                default_cycles,
                tuned_bpnnz: tuned.wire_bytes_per_nnz,
                default_bpnnz: base.wire_bytes_per_nnz,
                speedup: default_cycles as f64 / tuned_cycles.max(1) as f64,
            }
        })
        .collect();

    println!("Auto-tuner study — modeled cycles, tuned vs default ({} matrices)", rows.len());
    println!(
        "{:<26} {:<10} {:>9} {:<17} {:<7} {:>7} {:>7} {:>12} {:>12} {:>8}",
        "matrix",
        "family",
        "nnz",
        "kernel",
        "stages",
        "block",
        "B/nnz",
        "tuned cyc",
        "default cyc",
        "speedup"
    );
    for r in &rows {
        println!(
            "{:<26} {:<10} {:>9} {:<17} {:<7} {:>7} {:>7.2} {:>12} {:>12} {:>7.2}x",
            r.name,
            r.family,
            r.nnz,
            r.kernel,
            r.stages,
            r.block_bytes,
            r.tuned_bpnnz,
            r.tuned_cycles,
            r.default_cycles,
            r.speedup
        );
    }
    let baseline: Vec<f64> = rows.iter().map(|r| r.default_bpnnz).collect();
    let tuned_b: Vec<f64> = rows.iter().map(|r| r.tuned_bpnnz).collect();
    if let (Some(b), Some(t)) = (geometric_mean(&baseline), geometric_mean(&tuned_b)) {
        println!("geometric-mean wire B/nnz: tuned {t:.2} vs default {b:.2} (raw CSR 12.00)");
    }
    let speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    if let Some(g) = geometric_mean(&speedups) {
        println!("geometric-mean modeled speedup: {g:.2}x");
    }
    maybe_dump_json(&args, &rows);
}
