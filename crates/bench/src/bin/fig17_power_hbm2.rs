//! Regenerates Fig. 17: raw and net memory-power savings at iso-performance
//! on the 1 TB/s HBM2 system (64 W max), over the seven representative
//! matrices. Paper: average 33 W saved.

use recode_bench::{maybe_dump_json, parse_args};
use recode_core::experiment::power_study;
use recode_core::{report, SystemConfig};

fn main() {
    let args = parse_args();
    let rows = power_study(&SystemConfig::hbm2(), args.rep_scale, args.seed, args.blocks);
    print!(
        "{}",
        report::fig16_17(
            "Fig. 17 — Memory power savings, HBM2 1 TB/s (64 W max; paper avg 33 W)",
            &rows
        )
    );
    maybe_dump_json(&args, &rows);
}
