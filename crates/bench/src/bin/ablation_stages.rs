//! Ablation: per-stage contribution to compression — Delta alone,
//! Snappy alone, Delta+Snappy, Snappy+Huffman, full DSH — across a corpus
//! sample. Quantifies the paper's claim that "the delta encoding step on
//! its own provides no benefit, but combined with a compression algorithm
//! helps significantly".

use recode_bench::{corpus_entries, maybe_dump_json, parse_args};
use recode_codec::pipeline::{CompressedMatrix, MatrixCodecConfig, PipelineConfig};
use recode_sparse::util::geometric_mean;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    family: String,
    nnz: usize,
    delta_only: f64,
    snappy_only: f64,
    delta_snappy: f64,
    snappy_huffman: f64,
    dsh: f64,
}

fn config(delta: bool, snappy: bool, huffman: bool) -> MatrixCodecConfig {
    let base = PipelineConfig { delta, snappy, huffman, ..PipelineConfig::dsh_udp() };
    MatrixCodecConfig { index: base, value: PipelineConfig { delta: false, ..base } }
}

fn main() {
    let mut args = parse_args();
    if args.sample.is_none() {
        args.sample = Some(60);
    }
    let entries = corpus_entries(&args);
    let rows: Vec<Row> = {
        use rayon::prelude::*;
        entries
            .par_iter()
            .map(|e| {
                let a = e.generate();
                let bpnnz = |cfg| CompressedMatrix::compress(&a, cfg).unwrap().bytes_per_nnz();
                Row {
                    name: e.name.clone(),
                    family: e.family.to_string(),
                    nnz: a.nnz(),
                    delta_only: bpnnz(config(true, false, false)),
                    snappy_only: bpnnz(config(false, true, false)),
                    delta_snappy: bpnnz(config(true, true, false)),
                    snappy_huffman: bpnnz(config(false, true, true)),
                    dsh: bpnnz(config(true, true, true)),
                }
            })
            .collect()
    };
    println!("Stage ablation — geometric mean bytes per non-zero ({} matrices)", rows.len());
    let g = |f: fn(&Row) -> f64| geometric_mean(&rows.iter().map(f).collect::<Vec<_>>()).unwrap();
    println!("{:<22} {:>8}", "configuration", "B/nnz");
    println!("{:<22} {:>8.2}", "raw CSR", 12.0);
    println!(
        "{:<22} {:>8.2}  <- fixed-width recode, no size change by design",
        "delta only",
        g(|r| r.delta_only)
    );
    println!("{:<22} {:>8.2}", "snappy only", g(|r| r.snappy_only));
    println!("{:<22} {:>8.2}", "delta+snappy", g(|r| r.delta_snappy));
    println!("{:<22} {:>8.2}", "snappy+huffman", g(|r| r.snappy_huffman));
    println!("{:<22} {:>8.2}", "delta+snappy+huffman", g(|r| r.dsh));
    maybe_dump_json(&args, &rows);
}
