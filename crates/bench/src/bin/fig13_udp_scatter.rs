//! Regenerates Fig. 13: 64-lane UDP decompression throughput vs
//! #non-zeros, scatter across the corpus.

use recode_bench::{corpus_entries, maybe_dump_json, parse_args};
use recode_core::experiment::{decomp_study, materialize};
use recode_core::{report, SystemConfig};

fn main() {
    let args = parse_args();
    let sys = SystemConfig::ddr4();
    let entries = corpus_entries(&args);
    eprintln!("simulating {} matrices ({} blocks/stream each)...", entries.len(), args.blocks);
    let rows = decomp_study(&sys, &materialize(&entries), args.blocks);
    print!("{}", report::fig13(&rows));
    let bps: Vec<f64> = rows.iter().map(|r| r.udp_bps).collect();
    if let Some(g) = recode_sparse::util::geometric_mean(&bps) {
        println!("geomean UDP throughput: {:.2} GB/s", g / 1e9);
    }
    maybe_dump_json(&args, &rows);
}
