//! `BENCH_hotpath.json` — host-side wall-clock throughput of the three
//! innermost loops the simulator spends its time in: the UDP lane
//! (blocks/s over real DSH-compressed blocks — via `Lane::run`, which
//! executes the JIT artifact on x86-64 and the predecoded interpreter
//! elsewhere), the CPU Huffman decode stage, and the CPU Snappy decode
//! stage (both MB/s of uncompressed output). The `lane_decode_interp` and
//! `lane_decode_reference` sections force the two slower tiers over the
//! same blocks, so one snapshot holds the whole JIT/interp/reference
//! ladder; `huffman_flat` does the same for the codec's compiled Huffman
//! dispatch versus its scalar loop. These are *host* numbers: modeled lane
//! cycles are pinned by the golden trace fixture, must not move when these
//! get faster, and must be byte-identical across all three tiers.
//!
//! Usage: `bench_hotpath [--json PATH] [--smoke]`
//! (`--smoke` shrinks the corpus and repetitions for CI).

use recode_codec::pipeline::{Pipeline, PipelineConfig};
use recode_core::json::Json;
use recode_udp::lane::Lane;
use recode_udp::progs::DshDecoder;
use std::path::PathBuf;
use std::time::Instant;

struct Throughput {
    /// Compressed blocks decoded per repetition.
    blocks: usize,
    /// Timed repetitions over the whole block set.
    reps: usize,
    /// Total wall time for `reps * blocks` decodes.
    wall_ns: u64,
    /// Blocks decoded per second.
    blocks_per_s: f64,
    /// Uncompressed megabytes produced per second.
    mb_per_s: f64,
    /// Modeled lane cycles for one pass over the block set (lane passes
    /// only). Deterministic simulator output, so — unlike the wall-clock
    /// leaves above — `bench-compare` gates it across machines.
    modeled_cycles: Option<u64>,
}

impl Throughput {
    fn to_json(&self) -> Json {
        let doc = Json::obj()
            .set("blocks", Json::U64(self.blocks as u64))
            .set("reps", Json::U64(self.reps as u64))
            .set("wall_ns", Json::U64(self.wall_ns))
            .set("blocks_per_s", Json::F64(self.blocks_per_s))
            .set("mb_per_s", Json::F64(self.mb_per_s));
        match self.modeled_cycles {
            Some(c) => doc.set("modeled_cycles", Json::U64(c)),
            None => doc,
        }
    }
}

struct Snapshot {
    schema: &'static str,
    smoke: bool,
    /// Full DSH lane decode on one reused lane through `Lane::run` — the
    /// JIT tier when compiled artifacts are live, the predecoded
    /// interpreter otherwise.
    lane_decode: Throughput,
    /// Same blocks with the predecoded interpreter forced
    /// (`Lane::run_into_interp`), i.e. `Lane::run` as of the predecode PR.
    lane_decode_interp: Option<Throughput>,
    /// Same blocks through the word-at-a-time reference interpreter
    /// (`Lane::run_reference`), the pre-predecode baseline path.
    lane_decode_reference: Option<Throughput>,
    /// Compiled-tier inventory: lane images lowered, native bytes
    /// published, and the codec Huffman dispatch loop. Absent when the JIT
    /// is disabled or unsupported, so a `RECODE_NO_JIT=1` snapshot still
    /// parses.
    jit: Option<Json>,
    /// CPU pipeline Huffman decode stage (8 KB blocks).
    huffman_cpu: Throughput,
    /// CPU pipeline Snappy decode stage (32 KB blocks).
    snappy_cpu: Throughput,
    /// Statically certified cycle envelopes for the three lane programs the
    /// decoder runs. Pure verifier output — deterministic on every machine —
    /// so `bench-compare` gates each `*_cycles` leaf and an accidental
    /// certifier regression (a looser bound) fails the gate.
    certified_bounds: Json,
}

/// Per-stage certified envelope parameters as a JSON object keyed by stage
/// name. Leaf names end in `_cycles` on purpose: the `bench-compare` policy
/// auto-gates those (lower-is-better), so a certifier change that loosens a
/// bound trips the gate instead of drifting silently.
fn certified_bounds_json(decoder: &DshDecoder) -> Json {
    let mut doc = Json::obj();
    for (name, img) in
        [("huffman", &decoder.huffman), ("snappy", &decoder.snappy), ("delta", &decoder.delta)]
    {
        let Some(img) = img else { continue };
        let Some(bound) = img.verify_report.cycle_bound else { continue };
        let mut stage = Json::obj().set("min_cycles", Json::U64(bound.min));
        if let Some(max) = bound.max {
            stage = stage
                .set("max_fixed_cycles", Json::U64(max.fixed))
                .set("max_per_bit_cycles", Json::U64(max.per_input_bit));
        }
        doc = doc.set(name, stage);
    }
    doc
}

impl Snapshot {
    /// Serializes through the dependency-free shared writer so the
    /// snapshot (and the `bench-compare` gate reading it) works on every
    /// build, including the offline stub build where serde_json panics.
    fn to_json(&self) -> Json {
        let mut doc = Json::obj()
            .set("schema", Json::Str(self.schema.to_string()))
            .set("smoke", Json::Bool(self.smoke))
            .set("lane_decode", self.lane_decode.to_json());
        if let Some(r) = &self.lane_decode_interp {
            doc = doc.set("lane_decode_interp", r.to_json());
        }
        if let Some(r) = &self.lane_decode_reference {
            doc = doc.set("lane_decode_reference", r.to_json());
        }
        if let Some(j) = &self.jit {
            doc = doc.set("jit", j.clone());
        }
        doc.set("huffman_cpu", self.huffman_cpu.to_json())
            .set("snappy_cpu", self.snappy_cpu.to_json())
            .set("certified_bounds", self.certified_bounds.clone())
    }
}

/// Tridiagonal-ish column indices as LE u32 words — the same shape the
/// pipeline tests use, representative of FEM index streams.
fn banded_index_stream(n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n * 4);
    for i in 0..n {
        let base = (i / 3) as u32;
        let col = base + (i % 3) as u32;
        out.extend_from_slice(&col.to_le_bytes());
    }
    out
}

/// Skewed byte stream (what post-delta/snappy data looks like to Huffman).
fn skewed_stream(n: usize) -> Vec<u8> {
    (0..n).map(|i| if i % 17 == 0 { 99 } else { (i % 5) as u8 }).collect()
}

/// Times `reps` passes of `pass()` (which must decode every block once and
/// return the uncompressed bytes produced).
fn measure(blocks: usize, reps: usize, mut pass: impl FnMut() -> usize) -> Throughput {
    // One warm-up pass so allocator/cache state is steady.
    let mut bytes = pass();
    let t0 = Instant::now();
    for _ in 0..reps {
        bytes = pass();
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let secs = wall_ns as f64 / 1e9;
    Throughput {
        blocks,
        reps,
        wall_ns,
        blocks_per_s: (blocks * reps) as f64 / secs,
        mb_per_s: (bytes * reps) as f64 / 1e6 / secs,
        modeled_cycles: None,
    }
}

/// Decodes every block once, returning `(uncompressed bytes, modeled lane
/// cycles)`. The cycle count is identical on every pass.
fn lane_pass(
    decoder: &DshDecoder,
    blocks: &[recode_codec::block::CompressedBlock],
) -> (usize, u64) {
    let mut lane = Lane::new();
    let mut bytes = 0usize;
    let mut cycles = 0u64;
    for b in blocks {
        let o = decoder.decode_block(&mut lane, b).expect("bench blocks decode");
        bytes += o.output.len();
        cycles += o.cycles;
        std::hint::black_box(&o.output);
    }
    (bytes, cycles)
}

/// The same DSH stage chain as [`lane_pass`], but with the predecoded
/// interpreter forced (`Lane::run_into_interp`) — exactly what `Lane::run`
/// executed before the JIT tier, and what it still runs under
/// `RECODE_NO_JIT=1` or on non-x86-64 hosts. Checksum verification is kept
/// so all passes do identical non-interpreter work.
fn interp_pass(
    decoder: &DshDecoder,
    blocks: &[recode_codec::block::CompressedBlock],
) -> (usize, u64) {
    let cfg = recode_udp::lane::RunConfig::default();
    let mut lane = Lane::new();
    let mut bytes = 0usize;
    let mut cycles = 0u64;
    for b in blocks {
        b.verify_checksum().expect("bench blocks are well-formed");
        let mut cur: Vec<u8> = Vec::new();
        let mut bits = b.bit_len;
        let mut first = true;
        for img in [&decoder.huffman, &decoder.snappy, &decoder.delta].into_iter().flatten() {
            let mut out = Vec::new();
            let input: &[u8] = if first { &b.payload } else { &cur };
            let s = lane.run_into_interp(img, input, bits, cfg, &mut out).expect("blocks decode");
            cycles += s.cycles;
            cur = out;
            bits = cur.len() * 8;
            first = false;
        }
        bytes += cur.len();
        std::hint::black_box(&cur);
    }
    (bytes, cycles)
}

/// Compiled-tier inventory for the decoder's lane images, plus an
/// apples-to-apples reading of the codec's Huffman `FlatDecoder` dispatch:
/// the compiled loop (`decode_all`) against the scalar one
/// (`decode_all_scalar`) over the same encoded blocks. The `*_mb_per_s`
/// leaves are host wall-clock — informational under the `bench-compare`
/// policy, like every other throughput reading here.
fn jit_section(
    decoder: &DshDecoder,
    flat: &recode_codec::huffman::FlatDecoder,
    huff_blocks: &[recode_codec::block::CompressedBlock],
    reps: usize,
) -> Json {
    let mut images = 0u64;
    let mut blocks_lowered = 0u64;
    let mut code_bytes = 0u64;
    for img in [&decoder.huffman, &decoder.snappy, &decoder.delta].into_iter().flatten() {
        if let Some(jit) = img.jit() {
            images += 1;
            blocks_lowered += jit.blocks_lowered() as u64;
            code_bytes += jit.code_bytes() as u64;
        }
    }
    let compiled = measure(huff_blocks.len(), reps, || {
        huff_blocks
            .iter()
            .map(|b| flat.decode_all(&b.payload, b.bit_len).expect("flat decode").len())
            .sum()
    });
    let scalar = measure(huff_blocks.len(), reps, || {
        huff_blocks
            .iter()
            .map(|b| flat.decode_all_scalar(&b.payload, b.bit_len).expect("scalar decode").len())
            .sum()
    });
    Json::obj()
        .set("lane_images", Json::U64(images))
        .set("lane_blocks_lowered", Json::U64(blocks_lowered))
        .set("lane_code_bytes", Json::U64(code_bytes))
        .set(
            "huffman_flat",
            Json::obj()
                .set("jit_mb_per_s", Json::F64(compiled.mb_per_s))
                .set("scalar_mb_per_s", Json::F64(scalar.mb_per_s))
                .set("jit_wall_ns", Json::U64(compiled.wall_ns))
                .set("scalar_wall_ns", Json::U64(scalar.wall_ns)),
        )
}

/// The same DSH stage chain as [`lane_pass`], but through
/// `Lane::run_reference` — the word-at-a-time interpreter `run` used before
/// images were predecoded. Checksum verification is kept so both passes do
/// identical non-interpreter work.
fn reference_pass(
    decoder: &DshDecoder,
    blocks: &[recode_codec::block::CompressedBlock],
) -> (usize, u64) {
    let cfg = recode_udp::lane::RunConfig::default();
    let mut lane = Lane::new();
    let mut bytes = 0usize;
    let mut cycles = 0u64;
    for b in blocks {
        b.verify_checksum().expect("bench blocks are well-formed");
        let mut cur: Vec<u8> = Vec::new();
        let mut bits = b.bit_len;
        let mut first = true;
        for img in [&decoder.huffman, &decoder.snappy, &decoder.delta].into_iter().flatten() {
            let input: &[u8] = if first { &b.payload } else { &cur };
            let r = lane.run_reference(img, input, bits, cfg).expect("bench blocks decode");
            cycles += r.cycles;
            cur = r.output;
            bits = cur.len() * 8;
            first = false;
        }
        bytes += cur.len();
        std::hint::black_box(&cur);
    }
    (bytes, cycles)
}

fn cpu_pass(pipe: &Pipeline, blocks: &[recode_codec::block::CompressedBlock]) -> usize {
    let mut bytes = 0usize;
    for b in blocks {
        let out = pipe.decode_block(b).expect("bench blocks decode");
        bytes += out.len();
        std::hint::black_box(&out);
    }
    bytes
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut json = PathBuf::from("BENCH_hotpath.json");
    let mut smoke = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => {
                i += 1;
                json = PathBuf::from(argv.get(i).expect("--json PATH"));
            }
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                eprintln!("flags: --json PATH --smoke");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag `{other}` (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Corpus sizes: enough blocks that per-block setup cost dominates noise,
    // small enough that a smoke run stays in CI budget.
    let (nnz, reps) = if smoke { (64_000, 3) } else { (512_000, 10) };
    let index_data = banded_index_stream(nnz);

    // 1) Lane interpreter over full-DSH blocks.
    let dsh_cfg = PipelineConfig::dsh_udp();
    let dsh_pipe = Pipeline::train(dsh_cfg, &index_data).expect("train dsh");
    let dsh_stream = dsh_pipe.encode_stream(&index_data).expect("encode dsh");
    let decoder = DshDecoder::new(dsh_cfg, dsh_pipe.table().map(|t| t.lengths.as_slice()))
        .expect("build decoder");
    let mut lane_cycles = 0u64;
    let mut lane_decode = measure(dsh_stream.blocks.len(), reps, || {
        let (bytes, cycles) = lane_pass(&decoder, &dsh_stream.blocks);
        lane_cycles = cycles;
        bytes
    });
    lane_decode.modeled_cycles = Some(lane_cycles);
    let mut interp_cycles = 0u64;
    let mut lane_decode_interp = measure(dsh_stream.blocks.len(), reps, || {
        let (bytes, cycles) = interp_pass(&decoder, &dsh_stream.blocks);
        interp_cycles = cycles;
        bytes
    });
    lane_decode_interp.modeled_cycles = Some(interp_cycles);
    let mut reference_cycles = 0u64;
    let mut lane_decode_reference = measure(dsh_stream.blocks.len(), reps, || {
        let (bytes, cycles) = reference_pass(&decoder, &dsh_stream.blocks);
        reference_cycles = cycles;
        bytes
    });
    lane_decode_reference.modeled_cycles = Some(reference_cycles);
    // The tiers are different execution strategies for one machine model:
    // any cycle drift between them is a lowering bug, not a perf result.
    assert_eq!(lane_cycles, interp_cycles, "jit and interpreter modeled cycles diverge");
    assert_eq!(lane_cycles, reference_cycles, "interpreter and reference modeled cycles diverge");

    // 2) CPU Huffman decode (huffman-only pipeline, 8 KB blocks).
    let huff_cfg = PipelineConfig {
        delta: false,
        snappy: false,
        huffman: true,
        block_bytes: 8192,
        huffman_sample_every: 3,
    };
    let huff_data = skewed_stream(nnz * 4);
    let huff_pipe = Pipeline::train(huff_cfg, &huff_data).expect("train huffman");
    let huff_stream = huff_pipe.encode_stream(&huff_data).expect("encode huffman");
    let huffman_cpu =
        measure(huff_stream.blocks.len(), reps, || cpu_pass(&huff_pipe, &huff_stream.blocks));
    let jit = if recode_codec::jit::enabled() {
        let flat = recode_codec::huffman::FlatDecoder::build(
            huff_pipe.table().expect("huffman-only pipeline has a table"),
        );
        Some(jit_section(&decoder, &flat, &huff_stream.blocks, reps))
    } else {
        None
    };

    // 3) CPU Snappy decode (the paper's CPU baseline config, 32 KB blocks).
    let snap_cfg = PipelineConfig::snappy_cpu();
    let snap_pipe = Pipeline::train(snap_cfg, &index_data).expect("train snappy");
    let snap_stream = snap_pipe.encode_stream(&index_data).expect("encode snappy");
    let snappy_cpu =
        measure(snap_stream.blocks.len(), reps, || cpu_pass(&snap_pipe, &snap_stream.blocks));

    let snap = Snapshot {
        schema: "recode-bench-hotpath/v1",
        smoke,
        lane_decode,
        lane_decode_interp: Some(lane_decode_interp),
        lane_decode_reference: Some(lane_decode_reference),
        jit,
        huffman_cpu,
        snappy_cpu,
        certified_bounds: certified_bounds_json(&decoder),
    };
    eprintln!(
        "lane_decode      {:>12.0} blocks/s  {:>8.1} MB/s  (jit {})",
        snap.lane_decode.blocks_per_s,
        snap.lane_decode.mb_per_s,
        if recode_codec::jit::enabled() { "on" } else { "off" }
    );
    if let Some(r) = &snap.lane_decode_interp {
        eprintln!("lane_interp      {:>12.0} blocks/s  {:>8.1} MB/s", r.blocks_per_s, r.mb_per_s);
    }
    if let Some(r) = &snap.lane_decode_reference {
        eprintln!("lane_reference   {:>12.0} blocks/s  {:>8.1} MB/s", r.blocks_per_s, r.mb_per_s);
    }
    eprintln!(
        "huffman_cpu      {:>12.0} blocks/s  {:>8.1} MB/s",
        snap.huffman_cpu.blocks_per_s, snap.huffman_cpu.mb_per_s
    );
    eprintln!(
        "snappy_cpu       {:>12.0} blocks/s  {:>8.1} MB/s",
        snap.snappy_cpu.blocks_per_s, snap.snappy_cpu.mb_per_s
    );
    let text = snap.to_json().to_string_pretty();
    std::fs::write(&json, &text).expect("write BENCH_hotpath.json");
    println!("{text}");
    eprintln!("wrote {}", json.display());
}
