//! Ablation: reverse Cuthill–McKee reordering before recoding. The paper's
//! future work asks for "customized encodings for matrices with particular
//! structures"; RCM *creates* structure — clustering non-zeros near the
//! diagonal shrinks the index deltas the DSH pipeline compresses.
//!
//! Three conditions per matrix: natural generator order, a random
//! scrambling (worst case — how a matrix may arrive from an application),
//! and scrambled-then-RCM (what a recoding library can recover).

use recode_bench::{corpus_entries, maybe_dump_json, parse_args};
use recode_codec::pipeline::{CompressedMatrix, MatrixCodecConfig};
use recode_sparse::reorder::{reverse_cuthill_mckee, Permutation};
use recode_sparse::stats::MatrixStats;
use recode_sparse::util::geometric_mean;
use recode_sparse::Csr;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    family: String,
    bw_natural: usize,
    bw_scrambled: usize,
    bw_rcm: usize,
    bpnnz_natural: f64,
    bpnnz_scrambled: f64,
    bpnnz_rcm: f64,
}

fn bpnnz(a: &Csr) -> f64 {
    CompressedMatrix::compress(a, MatrixCodecConfig::udp_dsh())
        .expect("codec preconditions")
        .bytes_per_nnz()
}

/// Deterministic Fisher-Yates scrambling — a genuinely random relabeling
/// (a linear stride permutation would preserve the arithmetic structure
/// delta coding feeds on and prove nothing).
fn scramble(a: &Csr, seed: u64) -> Csr {
    let n = a.nrows();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut state = seed ^ 0x5C4A_11B1;
    for i in (1..n).rev() {
        let j = (recode_sparse::util::splitmix64(&mut state) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    Permutation::new(perm).apply_symmetric(a)
}

fn main() {
    let mut args = parse_args();
    if args.sample.is_none() {
        args.sample = Some(40);
    }
    let entries = corpus_entries(&args);
    let rows: Vec<Row> = {
        use rayon::prelude::*;
        entries
            .par_iter()
            .map(|e| {
                let a = e.generate();
                let scrambled = scramble(&a, e.seed);
                let perm = reverse_cuthill_mckee(&scrambled);
                let recovered = perm.apply_symmetric(&scrambled);
                Row {
                    name: e.name.clone(),
                    family: e.family.to_string(),
                    bw_natural: MatrixStats::compute(&a).bandwidth,
                    bw_scrambled: MatrixStats::compute(&scrambled).bandwidth,
                    bw_rcm: MatrixStats::compute(&recovered).bandwidth,
                    bpnnz_natural: bpnnz(&a),
                    bpnnz_scrambled: bpnnz(&scrambled),
                    bpnnz_rcm: bpnnz(&recovered),
                }
            })
            .collect()
    };
    println!("RCM ablation — DSH bytes/nnz: natural vs scrambled vs scrambled+RCM");
    println!(
        "{:<22} {:<11} {:>9} {:>9} {:>9} {:>8} {:>9} {:>8}",
        "matrix", "family", "bw nat", "bw scr", "bw rcm", "B nat", "B scr", "B rcm"
    );
    for r in &rows {
        println!(
            "{:<22} {:<11} {:>9} {:>9} {:>9} {:>8.2} {:>9.2} {:>8.2}",
            r.name,
            r.family,
            r.bw_natural,
            r.bw_scrambled,
            r.bw_rcm,
            r.bpnnz_natural,
            r.bpnnz_scrambled,
            r.bpnnz_rcm
        );
    }
    let g = |f: fn(&Row) -> f64| geometric_mean(&rows.iter().map(f).collect::<Vec<_>>()).unwrap();
    println!(
        "geomean B/nnz: natural {:.2} | scrambled {:.2} | scrambled+RCM {:.2}",
        g(|r| r.bpnnz_natural),
        g(|r| r.bpnnz_scrambled),
        g(|r| r.bpnnz_rcm)
    );
    println!(
        "reading: scrambling destroys index locality and inflates B/nnz; RCM recovers most \
         of it — reordering is the paper's 'customized structure' lever."
    );
    maybe_dump_json(&args, &rows);
}
