//! Ablation: Huffman primary-dispatch width. The UDP's multi-way dispatch
//! resolves `2^width` targets per cycle, so wider dispatch means fewer hops
//! per symbol — paid for in code-memory slots that EffCLiP must place.
//! This sweep quantifies the cycles-per-symbol vs code-footprint trade the
//! paper's 8-bit choice sits on.

use recode_bench::{maybe_dump_json, parse_args};
use recode_codec::pipeline::{Pipeline, PipelineConfig};
use recode_udp::lane::{Lane, RunConfig};
use recode_udp::progs::huffman::compile_with_width;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    width: u8,
    cycles_per_symbol: f64,
    code_bytes: usize,
    utilization: f64,
}

fn main() {
    let args = parse_args();
    // A realistic Huffman input: the snappy-compressed form of a banded
    // index stream.
    let data: Vec<u8> =
        (0..64 * 1024 / 4u32).flat_map(|i| ((i / 3) * 2 + (i % 3)).to_le_bytes()).collect();
    let config = PipelineConfig { huffman: false, ..PipelineConfig::dsh_udp() };
    let pipe = Pipeline::train(config, &data).expect("train");
    let pre = pipe.encode_stream(&data).expect("encode");
    // Concatenate the snappy payloads as the huffman stage's plaintext.
    let plaintext: Vec<u8> = pre.blocks.iter().flat_map(|b| b.payload.clone()).collect();
    let mut hist = [1u64; 256];
    for &b in &plaintext {
        hist[b as usize] += 1;
    }
    let table = recode_codec::huffman::HuffmanTable::from_histogram(&hist);
    let (bytes, bits) = recode_codec::huffman::encode(&plaintext, &table).expect("encode");

    println!("Huffman dispatch-width ablation ({} symbols)", plaintext.len());
    println!("{:>6} {:>14} {:>12} {:>12}", "width", "cycles/symbol", "code bytes", "packing");
    let mut rows = Vec::new();
    for width in [4u8, 5, 6, 7, 8, 9, 10, 11, 12] {
        let image = compile_with_width(&table.lengths, width).expect("compile");
        let mut lane = Lane::new();
        let r = lane.run(&image, &bytes, bits, RunConfig::default()).expect("decode");
        assert_eq!(r.output, plaintext);
        let cps = r.cycles as f64 / plaintext.len() as f64;
        println!(
            "{:>6} {:>14.2} {:>12} {:>11.0}%",
            width,
            cps,
            image.code_bytes(),
            image.utilization * 100.0
        );
        rows.push(Row {
            width,
            cycles_per_symbol: cps,
            code_bytes: image.code_bytes(),
            utilization: image.utilization,
        });
    }
    maybe_dump_json(&args, &rows);
}
