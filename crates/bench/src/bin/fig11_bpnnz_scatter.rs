//! Regenerates Fig. 11: bytes-per-non-zero vs #non-zeros scatter across the
//! corpus (paper finding: no correlation between size and compressibility).

use recode_bench::{corpus_entries, maybe_dump_json, parse_args};
use recode_core::experiment::compression_study;
use recode_core::report;

fn main() {
    let args = parse_args();
    let entries = corpus_entries(&args);
    let rows = compression_study(&entries);
    print!("{}", report::fig11(&rows));
    // The paper's observation: compression is structure-, not
    // size-correlated. Report the log-log correlation coefficient.
    let xs: Vec<f64> = rows.iter().map(|r| (r.nnz as f64).ln()).collect();
    let ys: Vec<f64> = rows.iter().map(|r| r.dsh_bpnnz.ln()).collect();
    println!("log-log correlation(nnz, DSH B/nnz): {:+.3}", correlation(&xs, &ys));
    maybe_dump_json(&args, &rows);
}

fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}
