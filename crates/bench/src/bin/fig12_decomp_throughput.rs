//! Regenerates Fig. 12: decompression throughput of a 32-thread CPU
//! (Snappy, calibrated model) vs a 64-lane UDP (DSH, simulated) on the
//! seven representative matrices, plus the corpus geomean speedup and the
//! single-lane per-8KB-block latency (paper: 21.7 µs geomean).

use recode_bench::{corpus_entries, maybe_dump_json, parse_args};
use recode_codec::pipeline::{CompressedMatrix, MatrixCodecConfig};
use recode_core::experiment::{decomp_study, materialize};
use recode_core::measure::measure_host_codec;
use recode_core::{report, seven, SystemConfig};

fn main() {
    let args = parse_args();
    let sys = SystemConfig::ddr4();

    // The seven representative matrices.
    let seven_mats: Vec<(String, String, recode_sparse::Csr)> =
        seven::generate_all(args.rep_scale, args.seed)
            .into_iter()
            .map(|(rep, m)| (rep.name.to_string(), rep.family.to_string(), m))
            .collect();
    let rows = decomp_study(&sys, &seven_mats, args.blocks);
    print!("{}", report::fig12(&rows));

    // Qualitative host check of the software-decode mechanism: this
    // machine's own single-thread rates (not the calibrated model inputs).
    if let Some((name, _, a)) = seven_mats.first() {
        let cm = CompressedMatrix::compress(a, MatrixCodecConfig::udp_dsh()).expect("compress");
        match measure_host_codec(&cm, 2) {
            Ok(h) => println!(
                "host check ({name}, 1 thread): snappy {:.2} GB/s vs DSH {:.2} GB/s ({:.1}x slower — the gap the UDP absorbs)",
                h.snappy_bps / 1e9,
                h.dsh_bps / 1e9,
                h.snappy_bps / h.dsh_bps
            ),
            Err(e) => eprintln!("host check failed: {e}"),
        }
    }

    // Corpus geomean (sampled; the paper reports ~7x over 369 matrices).
    let mut corpus_args = args.clone();
    if corpus_args.sample.is_none() {
        corpus_args.sample = Some(60);
    }
    let entries = corpus_entries(&corpus_args);
    eprintln!("\nsimulating corpus sample of {} matrices...", entries.len());
    let corpus_rows = decomp_study(&sys, &materialize(&entries), args.blocks);
    let speedups: Vec<f64> = corpus_rows.iter().map(|r| r.speedup).collect();
    if let Some(g) = recode_sparse::util::geometric_mean(&speedups) {
        println!(
            "corpus geomean UDP/CPU speedup ({} matrices): {g:.2}x (paper: ~7x)",
            corpus_rows.len()
        );
    }
    maybe_dump_json(&args, &(rows, corpus_rows));
}
