//! Regenerates Fig. 14: CPU vs CPU-UDP SpMV performance on DDR4
//! (100 GB/s): Max Uncompressed vs Decomp(CPU) vs Decomp(UDP+CPU).
//! Paper: geomean 2.4x heterogeneous speedup; CPU software decompression
//! lands >30x below the heterogeneous system.

use recode_bench::{parse_args, run_spmv_figure};
use recode_core::SystemConfig;

fn main() {
    let args = parse_args();
    run_spmv_figure(&args, SystemConfig::ddr4(), "Fig. 14 — SpMV on DDR4 (100 GB/s)");
}
