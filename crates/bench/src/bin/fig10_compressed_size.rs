//! Regenerates Fig. 10: geometric-mean compressed size (bytes per non-zero)
//! under CPU Snappy (32 KB), UDP Delta+Snappy and UDP Delta+Snappy+Huffman
//! (8 KB blocks) across the corpus. Paper: 5.20 / 5.92 / 5.00.

use recode_bench::{corpus_entries, maybe_dump_json, parse_args};
use recode_core::experiment::compression_study;
use recode_core::report;

fn main() {
    let args = parse_args();
    let entries = corpus_entries(&args);
    eprintln!("compressing {} matrices three ways...", entries.len());
    let rows = compression_study(&entries);
    print!("{}", report::fig10(&rows));
    maybe_dump_json(&args, &rows);
}
