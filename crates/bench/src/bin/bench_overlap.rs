//! `BENCH_overlap.json` — pipelined-executor snapshot over a sampled
//! synthetic corpus: per matrix, the modeled serial (decode-then-multiply)
//! makespan vs the overlapped (decode tile *i+1* while multiplying tile *i*)
//! makespan, and the warm-cache decode-cycle ratio over a 10-iteration
//! `spmv_iter` run (iteration 1 pays the decode; iterations 2.. hit the
//! decoded-block LRU cache).
//!
//! Usage: `bench_overlap [--scale ...] [--sample N] [--json PATH]`
//! (defaults: small scale, 12 matrices, writes BENCH_overlap.json).

use recode_bench::{corpus_entries, parse_args};
use recode_codec::pipeline::MatrixCodecConfig;
use recode_core::corpus::CorpusScale;
use recode_core::exec::RecodedSpmv;
use recode_core::json::Json;
use recode_core::overlap::{OverlapConfig, OverlapExecutor};
use recode_core::SystemConfig;

const ITERS: usize = 10;
const CACHE_BLOCKS: usize = 4096;

struct PerMatrix {
    name: String,
    nnz: usize,
    stages: usize,
    workers: usize,
    serial_makespan_cycles: u64,
    overlapped_makespan_cycles: u64,
    saved_cycles: u64,
    /// Decode cycles paid by iteration 1 (cold cache).
    cold_decode_cycles: u64,
    /// Mean decode cycles per iteration over iterations 2..=10 (warm cache).
    warm_decode_cycles_mean: f64,
    /// `cold / max(warm_mean, 1)` — the headline cache benefit.
    cold_warm_ratio: f64,
    /// Acceptance bar from the issue: warm iterations spend >= 5x fewer
    /// decode cycles than iteration 1.
    meets_5x: bool,
}

impl PerMatrix {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("name", Json::Str(self.name.clone()))
            .set("nnz", Json::U64(self.nnz as u64))
            .set("stages", Json::U64(self.stages as u64))
            .set("workers", Json::U64(self.workers as u64))
            .set("serial_makespan_cycles", Json::U64(self.serial_makespan_cycles))
            .set("overlapped_makespan_cycles", Json::U64(self.overlapped_makespan_cycles))
            .set("saved_cycles", Json::U64(self.saved_cycles))
            .set("cold_decode_cycles", Json::U64(self.cold_decode_cycles))
            .set("warm_decode_cycles_mean", Json::F64(self.warm_decode_cycles_mean))
            .set("cold_warm_ratio", Json::F64(self.cold_warm_ratio))
            .set("meets_5x", Json::Bool(self.meets_5x))
    }
}

struct Snapshot {
    schema: &'static str,
    matrices: usize,
    iters: usize,
    cache_blocks: usize,
    /// Matrices where the overlapped makespan is strictly below the serial
    /// decode+multiply sum.
    overlap_wins: usize,
    /// Matrices meeting the >= 5x warm-cache decode-cycle bar.
    warm_cache_wins: usize,
    mean_saved_fraction: f64,
    per_matrix: Vec<PerMatrix>,
}

impl Snapshot {
    /// Shared dependency-free writer: works on the offline stub build and
    /// feeds `recode bench-compare` the same bytes CI diffs.
    fn to_json(&self) -> Json {
        Json::obj()
            .set("schema", Json::Str(self.schema.to_string()))
            .set("matrices", Json::U64(self.matrices as u64))
            .set("iters", Json::U64(self.iters as u64))
            .set("cache_blocks", Json::U64(self.cache_blocks as u64))
            .set("overlap_wins", Json::U64(self.overlap_wins as u64))
            .set("warm_cache_wins", Json::U64(self.warm_cache_wins as u64))
            .set("mean_saved_fraction", Json::F64(self.mean_saved_fraction))
            .set("per_matrix", Json::Arr(self.per_matrix.iter().map(PerMatrix::to_json).collect()))
    }
}

fn main() {
    let mut args = parse_args();
    if args.sample.is_none() {
        args.sample = Some(12);
        args.scale = CorpusScale::Small;
    }
    let out_path =
        args.json.clone().unwrap_or_else(|| std::path::PathBuf::from("BENCH_overlap.json"));

    let sys = SystemConfig::ddr4();
    let mut per_matrix: Vec<PerMatrix> = Vec::new();
    for entry in corpus_entries(&args) {
        let a = entry.generate();
        if a.nrows() != a.ncols() {
            eprintln!("{}: skipped (not square, spmv_iter needs A x -> x)", entry.name);
            continue;
        }
        let recoded = match RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: skipped ({e})", entry.name);
                continue;
            }
        };
        let ex = OverlapExecutor::new(
            &recoded,
            OverlapConfig { overlap: true, cache_blocks: CACHE_BLOCKS, workers: 0 },
        );
        let x = vec![1.0; a.ncols()];
        let (_, per_iter) =
            ex.spmv_iter(&sys, &x, ITERS).expect("pipelined spmv on self-encoded corpus");
        let cold = &per_iter[0].overlap;
        let warm_total: u64 = per_iter[1..].iter().map(|s| s.overlap.decode_cycles).sum();
        let warm_mean = warm_total as f64 / (ITERS - 1) as f64;
        let ratio = cold.decode_cycles as f64 / warm_mean.max(1.0);
        per_matrix.push(PerMatrix {
            name: entry.name.clone(),
            nnz: a.nnz(),
            stages: cold.stages,
            workers: cold.workers,
            serial_makespan_cycles: cold.serial_makespan_cycles,
            overlapped_makespan_cycles: cold.overlapped_makespan_cycles,
            saved_cycles: cold.saved_cycles(),
            cold_decode_cycles: cold.decode_cycles,
            warm_decode_cycles_mean: warm_mean,
            cold_warm_ratio: ratio,
            meets_5x: cold.decode_cycles as f64 >= 5.0 * warm_mean.max(1.0),
        });
        eprintln!(
            "{}: {} stages, makespan {} vs {} serial, warm-cache ratio {:.0}x",
            entry.name,
            cold.stages,
            cold.overlapped_makespan_cycles,
            cold.serial_makespan_cycles,
            ratio
        );
    }

    let overlap_wins = per_matrix
        .iter()
        .filter(|m| m.overlapped_makespan_cycles < m.serial_makespan_cycles)
        .count();
    let warm_cache_wins = per_matrix.iter().filter(|m| m.meets_5x).count();
    let saved_sum: f64 = per_matrix
        .iter()
        .filter(|m| m.serial_makespan_cycles > 0)
        .map(|m| m.saved_cycles as f64 / m.serial_makespan_cycles as f64)
        .sum();
    let snapshot = Snapshot {
        schema: "recode-bench-overlap/v1",
        matrices: per_matrix.len(),
        iters: ITERS,
        cache_blocks: CACHE_BLOCKS,
        overlap_wins,
        warm_cache_wins,
        mean_saved_fraction: if per_matrix.is_empty() {
            0.0
        } else {
            saved_sum / per_matrix.len() as f64
        },
        per_matrix,
    };
    let text = snapshot.to_json().to_string_pretty();
    std::fs::write(&out_path, text).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", out_path.display());
        std::process::exit(1);
    });
    println!(
        "wrote {} ({} matrices; overlap beats serial on {}; warm cache >=5x on {})",
        out_path.display(),
        snapshot.matrices,
        snapshot.overlap_wins,
        snapshot.warm_cache_wins
    );
}
