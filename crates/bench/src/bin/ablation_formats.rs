//! Ablation: format-specialized compression vs programmable recoding.
//!
//! §VI-B contrasts the UDP approach with "block-oriented, customized data
//! storage formats": those shrink memory traffic only where the sparsity
//! pattern cooperates, and each needs its own hand-written CPU kernel. This
//! study puts the cited baselines (ELLPACK, SELL-C-σ \[27\], bitmasked 4×4
//! register blocks \[15\], varint-delta CSR \[28\]) next to DSH recoding on
//! the same corpus, in the same bytes-per-non-zero currency.

use recode_bench::{corpus_entries, maybe_dump_json, parse_args};
use recode_codec::pipeline::{CompressedMatrix, MatrixCodecConfig};
use recode_sparse::formats::{BitmaskBlockCsr, Ell, SellCs, VarintCsr};
use recode_sparse::util::geometric_mean;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    family: String,
    nnz: usize,
    csr: f64,
    ell: f64,
    sell_32_512: f64,
    bitmask_4x4: f64,
    varint_csr: f64,
    dsh: f64,
}

fn main() {
    let mut args = parse_args();
    if args.sample.is_none() {
        args.sample = Some(60);
    }
    let entries = corpus_entries(&args);
    let rows: Vec<Row> = {
        use rayon::prelude::*;
        entries
            .par_iter()
            .map(|e| {
                let a = e.generate();
                Row {
                    name: e.name.clone(),
                    family: e.family.to_string(),
                    nnz: a.nnz(),
                    csr: 12.0,
                    ell: Ell::from_csr(&a).map_or(f64::NAN, |f| f.bytes_per_nnz()),
                    sell_32_512: SellCs::from_csr(&a, 32, 512)
                        .map_or(f64::NAN, |f| f.bytes_per_nnz()),
                    bitmask_4x4: BitmaskBlockCsr::from_csr(&a)
                        .map_or(f64::NAN, |f| f.bytes_per_nnz()),
                    varint_csr: VarintCsr::from_csr(&a).map_or(f64::NAN, |f| f.bytes_per_nnz()),
                    dsh: CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh())
                        .map_or(f64::NAN, |c| c.bytes_per_nnz()),
                }
            })
            .collect()
    };

    println!(
        "Format ablation — geometric mean bytes/nnz over {} matrices (lower is better)",
        rows.len()
    );
    let g = |f: fn(&Row) -> f64| {
        geometric_mean(
            &rows.iter().map(f).filter(|v| v.is_finite() && *v > 0.0).collect::<Vec<_>>(),
        )
        .unwrap_or(f64::NAN)
    };
    println!("{:<28} {:>8}   notes", "format", "B/nnz");
    println!("{:<28} {:>8.2}   baseline", "CSR", g(|r| r.csr));
    println!("{:<28} {:>8.2}   pads to the longest row", "ELLPACK", g(|r| r.ell));
    println!("{:<28} {:>8.2}   sorted 32-row chunks", "SELL-32-512 [27]", g(|r| r.sell_32_512));
    println!(
        "{:<28} {:>8.2}   wins only on dense blocks",
        "bitmask 4x4 blocks [15]",
        g(|r| r.bitmask_4x4)
    );
    println!(
        "{:<28} {:>8.2}   CPU decodes inline in SpMV",
        "varint-delta CSR [28]",
        g(|r| r.varint_csr)
    );
    println!(
        "{:<28} {:>8.2}   general; decode offloaded to UDP",
        "DSH recoding (this paper)",
        g(|r| r.dsh)
    );
    println!("\nper-family geomeans (DSH | best format):");
    let mut fams: Vec<&str> = rows.iter().map(|r| r.family.as_str()).collect();
    fams.sort_unstable();
    fams.dedup();
    for fam in fams {
        let sub: Vec<&Row> = rows.iter().filter(|r| r.family == fam).collect();
        let gm = |f: fn(&Row) -> f64| {
            geometric_mean(
                &sub.iter().map(|r| f(r)).filter(|v| v.is_finite() && *v > 0.0).collect::<Vec<_>>(),
            )
            .unwrap_or(f64::NAN)
        };
        let best_fmt =
            [gm(|r| r.ell), gm(|r| r.sell_32_512), gm(|r| r.bitmask_4x4), gm(|r| r.varint_csr)]
                .into_iter()
                .fold(f64::INFINITY, f64::min);
        println!("  {:<12} {:>6.2} | {:>6.2}", fam, gm(|r| r.dsh), best_fmt);
    }
    maybe_dump_json(&args, &rows);
}
