//! Regenerates Fig. 3: single-die CPU SpMV performance on a 100 GB/s DDR4
//! system — memory-bandwidth limited. Prints the modeled bound and a
//! host-measured rate for each matrix.

use recode_bench::{corpus_entries, maybe_dump_json, parse_args};
use recode_core::experiment::fig3_cpu_spmv;
use recode_core::{report, SystemConfig};

fn main() {
    let mut args = parse_args();
    // Fig. 3 is about the flat bandwidth bound; a modest sample shows it.
    if args.sample.is_none() {
        args.sample = Some(24);
    }
    let entries = corpus_entries(&args);
    let sys = SystemConfig::ddr4();
    let rows = fig3_cpu_spmv(&sys, &entries);
    print!("{}", report::fig3(&rows));
    println!(
        "\nmodeled bound: 2 flops x 100 GB/s / 12 B per nnz = {:.2} Gflop/s",
        rows.first().map_or(0.0, |r| r.modeled_gflops)
    );
    maybe_dump_json(&args, &rows);
}
