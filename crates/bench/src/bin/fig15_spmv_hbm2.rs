//! Regenerates Fig. 15: CPU vs CPU-UDP SpMV performance on HBM2 (1 TB/s).
//! The speedup structure matches DDR4 (the compression ratio sets it);
//! absolute rates scale with the 10x bandwidth.

use recode_bench::{parse_args, run_spmv_figure};
use recode_core::SystemConfig;

fn main() {
    let args = parse_args();
    run_spmv_figure(&args, SystemConfig::hbm2(), "Fig. 15 — SpMV on HBM2 (1 TB/s)");
}
