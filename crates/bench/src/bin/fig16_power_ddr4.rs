//! Regenerates Fig. 16: raw and net memory-power savings at iso-performance
//! on the 100 GB/s DDR4 system (80 W max), over the seven representative
//! matrices. Paper: average 51 W saved.

use recode_bench::{maybe_dump_json, parse_args};
use recode_core::experiment::power_study;
use recode_core::{report, SystemConfig};

fn main() {
    let args = parse_args();
    let rows = power_study(&SystemConfig::ddr4(), args.rep_scale, args.seed, args.blocks);
    print!(
        "{}",
        report::fig16_17(
            "Fig. 16 — Memory power savings, DDR4 100 GB/s (80 W max; paper avg 51 W)",
            &rows
        )
    );
    maybe_dump_json(&args, &rows);
}
