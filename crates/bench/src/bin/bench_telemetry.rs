//! `BENCH_telemetry.json` — headline observability snapshot from the trace
//! path over a sampled synthetic corpus: geomean compressed bytes/nnz,
//! geomean single-lane µs per 8 KB block, mean lane utilization, and the
//! batch-wide opcode-class / decode-stage cycle mix (paper Figs. 12/13).
//!
//! Usage: `bench_telemetry [--scale ...] [--sample N] [--json PATH]`
//! (defaults: small scale, 12 matrices, writes BENCH_telemetry.json).

use recode_bench::{corpus_entries, parse_args};
use recode_codec::pipeline::MatrixCodecConfig;
use recode_core::corpus::CorpusScale;
use recode_core::exec::RecodedSpmv;
use recode_core::json::Json;
use recode_core::SystemConfig;
use recode_sparse::spmv::SpmvKernel;
use recode_sparse::util::geometric_mean;

struct PerMatrix {
    name: String,
    nnz: usize,
    bytes_per_nnz: f64,
    us_per_block: f64,
    lane_utilization: f64,
    makespan_cycles: u64,
    wall_ns_total: u64,
}

impl PerMatrix {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("name", Json::Str(self.name.clone()))
            .set("nnz", Json::U64(self.nnz as u64))
            .set("bytes_per_nnz", Json::F64(self.bytes_per_nnz))
            .set("us_per_block", Json::F64(self.us_per_block))
            .set("lane_utilization", Json::F64(self.lane_utilization))
            .set("makespan_cycles", Json::U64(self.makespan_cycles))
            .set("wall_ns_total", Json::U64(self.wall_ns_total))
    }
}

struct Snapshot {
    schema: &'static str,
    matrices: usize,
    geomean_bytes_per_nnz: f64,
    geomean_us_per_block: f64,
    mean_lane_utilization: f64,
    /// Fraction of batch cycles by opcode class, summed over all runs.
    opclass_share: OpclassShare,
    /// Fraction of batch cycles by decode stage, summed over all runs.
    stage_share: StageShare,
    per_matrix: Vec<PerMatrix>,
}

impl Snapshot {
    /// Shared dependency-free writer: works on the offline stub build and
    /// feeds `recode bench-compare` the same bytes CI diffs.
    fn to_json(&self) -> Json {
        Json::obj()
            .set("schema", Json::Str(self.schema.to_string()))
            .set("matrices", Json::U64(self.matrices as u64))
            .set("geomean_bytes_per_nnz", Json::F64(self.geomean_bytes_per_nnz))
            .set("geomean_us_per_block", Json::F64(self.geomean_us_per_block))
            .set("mean_lane_utilization", Json::F64(self.mean_lane_utilization))
            .set(
                "opclass_share",
                Json::obj()
                    .set("dispatch_share", Json::F64(self.opclass_share.dispatch))
                    .set("alu_share", Json::F64(self.opclass_share.alu))
                    .set("mem_share", Json::F64(self.opclass_share.mem))
                    .set("stream_share", Json::F64(self.opclass_share.stream)),
            )
            .set(
                "stage_share",
                Json::obj()
                    .set("huffman_share", Json::F64(self.stage_share.huffman))
                    .set("snappy_share", Json::F64(self.stage_share.snappy))
                    .set("delta_share", Json::F64(self.stage_share.delta)),
            )
            .set("per_matrix", Json::Arr(self.per_matrix.iter().map(PerMatrix::to_json).collect()))
    }
}

struct OpclassShare {
    dispatch: f64,
    alu: f64,
    mem: f64,
    stream: f64,
}

struct StageShare {
    huffman: f64,
    snappy: f64,
    delta: f64,
}

fn main() {
    let mut args = parse_args();
    if args.sample.is_none() {
        args.sample = Some(12);
        args.scale = CorpusScale::Small;
    }
    let out_path =
        args.json.clone().unwrap_or_else(|| std::path::PathBuf::from("BENCH_telemetry.json"));

    let sys = SystemConfig::ddr4();
    let mut per_matrix = Vec::new();
    let mut opclass = recode_udp::OpClassCycles::default();
    let mut stages = recode_udp::StageCycles::default();
    for entry in corpus_entries(&args) {
        let a = entry.generate();
        let r = match RecodedSpmv::new_traced(&a, MatrixCodecConfig::udp_dsh()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: skipped ({e})", entry.name);
                continue;
            }
        };
        let x = vec![1.0; a.ncols()];
        let (_, stats, doc) = r
            .spmv_traced(&sys, SpmvKernel::Serial, &x, None, &entry.name)
            .expect("traced spmv on self-encoded corpus");
        let accel = &stats.accel;
        opclass.merge(&accel.opclass);
        stages.merge(&accel.stage_cycles);
        let us_per_block = if accel.jobs == 0 {
            0.0
        } else {
            accel.busy_cycles as f64 / accel.jobs as f64 / accel.freq_hz * 1e6
        };
        per_matrix.push(PerMatrix {
            name: entry.name.clone(),
            nnz: a.nnz(),
            bytes_per_nnz: doc.matrix.bytes_per_nnz,
            us_per_block,
            lane_utilization: accel.lane_utilization,
            makespan_cycles: accel.makespan_cycles,
            wall_ns_total: doc.wall_ns_total,
        });
        eprintln!(
            "{}: {:.2} B/nnz, {:.1} us/block, {:.0}% lanes",
            entry.name,
            doc.matrix.bytes_per_nnz,
            us_per_block,
            accel.lane_utilization * 100.0
        );
    }

    let bpn: Vec<f64> = per_matrix.iter().map(|m| m.bytes_per_nnz).collect();
    let uspb: Vec<f64> = per_matrix.iter().map(|m| m.us_per_block).filter(|v| *v > 0.0).collect();
    let util_sum: f64 = per_matrix.iter().map(|m| m.lane_utilization).sum();
    let oc_total = opclass.total().max(1) as f64;
    let st_total = stages.total().max(1) as f64;
    let snapshot = Snapshot {
        schema: "recode-bench-telemetry/v1",
        matrices: per_matrix.len(),
        geomean_bytes_per_nnz: geometric_mean(&bpn).unwrap_or(0.0),
        geomean_us_per_block: geometric_mean(&uspb).unwrap_or(0.0),
        mean_lane_utilization: if per_matrix.is_empty() {
            0.0
        } else {
            util_sum / per_matrix.len() as f64
        },
        opclass_share: OpclassShare {
            dispatch: opclass.dispatch as f64 / oc_total,
            alu: opclass.alu as f64 / oc_total,
            mem: opclass.mem as f64 / oc_total,
            stream: opclass.stream as f64 / oc_total,
        },
        stage_share: StageShare {
            huffman: stages.huffman as f64 / st_total,
            snappy: stages.snappy as f64 / st_total,
            delta: stages.delta as f64 / st_total,
        },
        per_matrix,
    };
    let text = snapshot.to_json().to_string_pretty();
    std::fs::write(&out_path, text).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", out_path.display());
        std::process::exit(1);
    });
    println!(
        "wrote {} ({} matrices, geomean {:.2} B/nnz, {:.1} us/block, {:.0}% mean lane utilization)",
        out_path.display(),
        snapshot.matrices,
        snapshot.geomean_bytes_per_nnz,
        snapshot.geomean_us_per_block,
        snapshot.mean_lane_utilization * 100.0
    );
}
