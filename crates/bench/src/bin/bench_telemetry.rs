//! `BENCH_telemetry.json` — headline observability snapshot from the trace
//! path over a sampled synthetic corpus: geomean compressed bytes/nnz,
//! geomean single-lane µs per 8 KB block, mean lane utilization, and the
//! batch-wide opcode-class / decode-stage cycle mix (paper Figs. 12/13).
//!
//! Usage: `bench_telemetry [--scale ...] [--sample N] [--json PATH]`
//! (defaults: small scale, 12 matrices, writes BENCH_telemetry.json).

use recode_bench::{corpus_entries, parse_args};
use recode_codec::pipeline::MatrixCodecConfig;
use recode_core::corpus::CorpusScale;
use recode_core::exec::RecodedSpmv;
use recode_core::SystemConfig;
use recode_sparse::spmv::SpmvKernel;
use recode_sparse::util::geometric_mean;
use serde::Serialize;

#[derive(Serialize)]
struct PerMatrix {
    name: String,
    nnz: usize,
    bytes_per_nnz: f64,
    us_per_block: f64,
    lane_utilization: f64,
    makespan_cycles: u64,
    wall_ns_total: u64,
}

#[derive(Serialize)]
struct Snapshot {
    schema: &'static str,
    matrices: usize,
    geomean_bytes_per_nnz: f64,
    geomean_us_per_block: f64,
    mean_lane_utilization: f64,
    /// Fraction of batch cycles by opcode class, summed over all runs.
    opclass_share: OpclassShare,
    /// Fraction of batch cycles by decode stage, summed over all runs.
    stage_share: StageShare,
    per_matrix: Vec<PerMatrix>,
}

#[derive(Serialize)]
struct OpclassShare {
    dispatch: f64,
    alu: f64,
    mem: f64,
    stream: f64,
}

#[derive(Serialize)]
struct StageShare {
    huffman: f64,
    snappy: f64,
    delta: f64,
}

fn main() {
    let mut args = parse_args();
    if args.sample.is_none() {
        args.sample = Some(12);
        args.scale = CorpusScale::Small;
    }
    let out_path =
        args.json.clone().unwrap_or_else(|| std::path::PathBuf::from("BENCH_telemetry.json"));

    let sys = SystemConfig::ddr4();
    let mut per_matrix = Vec::new();
    let mut opclass = recode_udp::OpClassCycles::default();
    let mut stages = recode_udp::StageCycles::default();
    for entry in corpus_entries(&args) {
        let a = entry.generate();
        let r = match RecodedSpmv::new_traced(&a, MatrixCodecConfig::udp_dsh()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: skipped ({e})", entry.name);
                continue;
            }
        };
        let x = vec![1.0; a.ncols()];
        let (_, stats, doc) = r
            .spmv_traced(&sys, SpmvKernel::Serial, &x, None, &entry.name)
            .expect("traced spmv on self-encoded corpus");
        let accel = &stats.accel;
        opclass.merge(&accel.opclass);
        stages.merge(&accel.stage_cycles);
        let us_per_block = if accel.jobs == 0 {
            0.0
        } else {
            accel.busy_cycles as f64 / accel.jobs as f64 / accel.freq_hz * 1e6
        };
        per_matrix.push(PerMatrix {
            name: entry.name.clone(),
            nnz: a.nnz(),
            bytes_per_nnz: doc.matrix.bytes_per_nnz,
            us_per_block,
            lane_utilization: accel.lane_utilization,
            makespan_cycles: accel.makespan_cycles,
            wall_ns_total: doc.wall_ns_total,
        });
        eprintln!(
            "{}: {:.2} B/nnz, {:.1} us/block, {:.0}% lanes",
            entry.name,
            doc.matrix.bytes_per_nnz,
            us_per_block,
            accel.lane_utilization * 100.0
        );
    }

    let bpn: Vec<f64> = per_matrix.iter().map(|m| m.bytes_per_nnz).collect();
    let uspb: Vec<f64> = per_matrix.iter().map(|m| m.us_per_block).filter(|v| *v > 0.0).collect();
    let util_sum: f64 = per_matrix.iter().map(|m| m.lane_utilization).sum();
    let oc_total = opclass.total().max(1) as f64;
    let st_total = stages.total().max(1) as f64;
    let snapshot = Snapshot {
        schema: "recode-bench-telemetry/v1",
        matrices: per_matrix.len(),
        geomean_bytes_per_nnz: geometric_mean(&bpn).unwrap_or(0.0),
        geomean_us_per_block: geometric_mean(&uspb).unwrap_or(0.0),
        mean_lane_utilization: if per_matrix.is_empty() {
            0.0
        } else {
            util_sum / per_matrix.len() as f64
        },
        opclass_share: OpclassShare {
            dispatch: opclass.dispatch as f64 / oc_total,
            alu: opclass.alu as f64 / oc_total,
            mem: opclass.mem as f64 / oc_total,
            stream: opclass.stream as f64 / oc_total,
        },
        stage_share: StageShare {
            huffman: stages.huffman as f64 / st_total,
            snappy: stages.snappy as f64 / st_total,
            delta: stages.delta as f64 / st_total,
        },
        per_matrix,
    };
    let text = serde_json::to_string_pretty(&snapshot).expect("snapshot serialize");
    std::fs::write(&out_path, text).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", out_path.display());
        std::process::exit(1);
    });
    println!(
        "wrote {} ({} matrices, geomean {:.2} B/nnz, {:.1} us/block, {:.0}% mean lane utilization)",
        out_path.display(),
        snapshot.matrices,
        snapshot.geomean_bytes_per_nnz,
        snapshot.geomean_us_per_block,
        snapshot.mean_lane_utilization * 100.0
    );
}
