//! Ablation: block-size sweep. The paper fixes 8 KB blocks (a UDP lane's
//! working set) and 32 KB for the CPU baseline; this sweep shows the
//! compression-ratio cost of small, independently-decodable blocks and the
//! lane-parallelism benefit they buy.

use recode_bench::{corpus_entries, maybe_dump_json, parse_args};
use recode_codec::pipeline::{CompressedMatrix, MatrixCodecConfig, PipelineConfig};
use recode_sparse::util::geometric_mean;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    block_bytes: usize,
    bpnnz: f64,
    blocks: usize,
}

fn main() {
    let mut args = parse_args();
    if args.sample.is_none() {
        args.sample = Some(40);
    }
    let entries = corpus_entries(&args);
    let block_sizes = [2048usize, 4096, 8192, 16384, 32768, 65536];
    let mut all_rows = Vec::new();
    println!("Block-size ablation — DSH geometric-mean bytes/nnz vs block size");
    println!("{:>10} {:>10} {:>14}", "block B", "B/nnz", "blocks/matrix");
    for bs in block_sizes {
        let rows: Vec<Row> = {
            use rayon::prelude::*;
            entries
                .par_iter()
                .map(|e| {
                    let a = e.generate();
                    let cfg = MatrixCodecConfig {
                        index: PipelineConfig { block_bytes: bs, ..PipelineConfig::dsh_udp() },
                        value: PipelineConfig { block_bytes: bs, ..PipelineConfig::sh_udp() },
                    };
                    let cm = CompressedMatrix::compress(&a, cfg).unwrap();
                    Row {
                        name: e.name.clone(),
                        block_bytes: bs,
                        bpnnz: cm.bytes_per_nnz(),
                        blocks: cm.index_stream.len() + cm.value_stream.len(),
                    }
                })
                .collect()
        };
        let g = geometric_mean(&rows.iter().map(|r| r.bpnnz).collect::<Vec<_>>()).unwrap();
        let avg_blocks = rows.iter().map(|r| r.blocks).sum::<usize>() / rows.len();
        println!("{bs:>10} {g:>10.2} {avg_blocks:>14}");
        all_rows.extend(rows);
    }
    maybe_dump_json(&args, &all_rows);
}
