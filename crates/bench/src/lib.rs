//! Shared harness plumbing for the per-figure binaries.
//!
//! Every `fig*` binary accepts the same flags:
//!
//! ```text
//! --scale small|medium|paper   corpus size regime   (default: medium)
//! --sample N                   use only the first N corpus entries
//! --seed N                     corpus master seed   (default: 2019)
//! --blocks N                   UDP-simulated blocks per stream (default: 24)
//! --rep-scale F                size factor for the seven representative
//!                              matrices (default: 0.05)
//! --json PATH                  also dump rows as JSON
//! ```

use recode_core::corpus::{corpus, CorpusEntry, CorpusScale};
use recode_core::experiment::{materialize, spmv_study};
use recode_core::{report, seven, SystemConfig};
use serde::Serialize;
use std::path::PathBuf;

/// Parsed harness flags.
#[derive(Debug, Clone)]
pub struct Args {
    /// Corpus size regime.
    pub scale: CorpusScale,
    /// Optional cap on corpus entries.
    pub sample: Option<usize>,
    /// Corpus master seed.
    pub seed: u64,
    /// UDP-simulated blocks per stream.
    pub blocks: usize,
    /// Scale factor for the seven representative matrices.
    pub rep_scale: f64,
    /// Optional JSON dump path.
    pub json: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: CorpusScale::Medium,
            sample: None,
            seed: 2019,
            blocks: 24,
            rep_scale: 0.05,
            json: None,
        }
    }
}

/// Parses `std::env::args`. Exits with a message on bad flags.
pub fn parse_args() -> Args {
    let mut out = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[*i - 1]);
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                out.scale = match value(&mut i).as_str() {
                    "small" => CorpusScale::Small,
                    "medium" => CorpusScale::Medium,
                    "paper" => CorpusScale::Paper,
                    other => {
                        eprintln!("unknown scale `{other}` (small|medium|paper)");
                        std::process::exit(2);
                    }
                };
            }
            "--sample" => out.sample = Some(value(&mut i).parse().expect("--sample N")),
            "--seed" => out.seed = value(&mut i).parse().expect("--seed N"),
            "--blocks" => out.blocks = value(&mut i).parse().expect("--blocks N"),
            "--rep-scale" => out.rep_scale = value(&mut i).parse().expect("--rep-scale F"),
            "--json" => out.json = Some(PathBuf::from(value(&mut i))),
            "--help" | "-h" => {
                eprintln!("flags: --scale small|medium|paper --sample N --seed N --blocks N --rep-scale F --json PATH");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag `{other}` (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    out
}

/// Builds the (possibly sampled) corpus for these args.
pub fn corpus_entries(args: &Args) -> Vec<CorpusEntry> {
    let mut entries = corpus(args.scale, args.seed);
    if let Some(n) = args.sample {
        entries.truncate(n);
    }
    entries
}

/// Writes rows as pretty JSON if `--json` was given.
pub fn maybe_dump_json<T: Serialize>(args: &Args, rows: &T) {
    if let Some(path) = &args.json {
        let text = serde_json::to_string_pretty(rows).expect("rows serialize");
        std::fs::write(path, text).unwrap_or_else(|e| {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        });
        eprintln!("wrote {}", path.display());
    }
}

/// Shared driver for Figs. 14/15: the seven representative matrices plus a
/// corpus sample, evaluated under the three scenarios on `sys`.
pub fn run_spmv_figure(args: &Args, sys: SystemConfig, title: &str) {
    let seven_mats: Vec<(String, String, recode_sparse::Csr)> =
        seven::generate_all(args.rep_scale, args.seed)
            .into_iter()
            .map(|(rep, m)| (rep.name.to_string(), rep.family.to_string(), m))
            .collect();
    let mut rows = spmv_study(&sys, &seven_mats, args.blocks);

    let mut corpus_args = args.clone();
    if corpus_args.sample.is_none() {
        corpus_args.sample = Some(60);
    }
    let entries = corpus_entries(&corpus_args);
    eprintln!("evaluating corpus sample of {} matrices...", entries.len());
    rows.extend(spmv_study(&sys, &materialize(&entries), args.blocks));
    print!("{}", report::fig14_15(title, &rows));
    maybe_dump_json(args, &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_medium_full_corpus() {
        let a = Args::default();
        assert_eq!(a.scale, CorpusScale::Medium);
        assert!(a.sample.is_none());
        assert_eq!(a.seed, 2019);
    }

    #[test]
    fn corpus_entries_respects_sample() {
        let a = Args { scale: CorpusScale::Small, sample: Some(5), ..Default::default() };
        assert_eq!(corpus_entries(&a).len(), 5);
    }
}
