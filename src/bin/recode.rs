//! `recode` — command-line front end to the CPU-UDP recoding system.
//!
//! ```text
//! recode info      <matrix.mtx>                  structural + value statistics
//! recode compress  <matrix.mtx> -o <out.rcmx>    DSH-compress (JSON container)
//! recode decompress <in.rcmx>   -o <matrix.mtx>  restore MatrixMarket
//! recode spmv      <matrix.mtx> [--trace <out.json>]
//!                  [--overlap] [--cache-blocks N] [--iters N]
//!                  [--tuned <config.json>]
//!                                                run SpMV through the simulated
//!                                                heterogeneous system and report;
//!                                                --trace writes the full telemetry
//!                                                document (recode-trace/v1 JSON);
//!                                                --overlap routes through the
//!                                                pipelined decode/multiply
//!                                                executor, --cache-blocks seeds
//!                                                its decoded-block LRU cache, and
//!                                                --iters repeats the multiply to
//!                                                show the warm-cache decode cost;
//!                                                --tuned runs the kernel and codec
//!                                                a persisted recode-tuned/v1
//!                                                config prescribes (digest
//!                                                mismatch is a hard error)
//! recode tune      <matrix.mtx> [-o <config.json>] [--seed N]
//!                                                search kernel x codec-stage x
//!                                                block size, print the candidate
//!                                                table, and persist the winner
//!                                                (selection is by deterministic
//!                                                modeled cycles; RECODE_TUNE_TRIALS
//!                                                resizes only the informational
//!                                                wall-clock column)
//! recode report    <trace.json>                  render a trace as a table
//! recode trace-check <trace.json> [--bounds]     validate a trace's schema and
//!                                                internal invariants; --bounds
//!                                                additionally re-verifies the
//!                                                stored per-stage cycles against
//!                                                the certified static cycle
//!                                                envelopes of the builtin stage
//!                                                programs (exit 1 on violation)
//! recode gen       <family> <target_nnz> -o <matrix.mtx>
//!                                                emit a synthetic matrix
//! recode verify-program <file.udp | builtin:NAME>
//!                                                run the static verifier on a
//!                                                lane program and print its
//!                                                findings plus the certified
//!                                                per-block cycle-bounds table
//!                                                (exit 1 on Error); builtins:
//!                                                delta, snappy, huffman, or
//!                                                dsh for the whole pipeline
//!                                                (bare names also accepted)
//! recode chaos     [--trials N] [--seed N] [--json <out.json>]
//!                                                run a seeded chaos campaign
//!                                                over the resilient executors
//!                                                and report; exit 1 unless the
//!                                                resilience contract held on
//!                                                every trial
//! recode metrics   <matrix.mtx>                  run one budgeted job and print
//!                                                the trace counters as a
//!                                                Prometheus text exposition
//! recode bench-compare <old.json> <new.json>     diff two bench snapshots;
//!                                                exit 1 when a gated metric
//!                                                regressed >20% beyond noise
//! ```
//!
//! Flags: `-o PATH` output, `--config dsh|ds|snappy` codec choice,
//! `--seed N` for `gen`/`chaos`, `--trace PATH` / `--overlap` /
//! `--cache-blocks N` / `--iters N` for `spmv`, `--inject-trap JOB` /
//! `--inject-corrupt BLOCK` fault injection for `spmv`, `--trials N` /
//! `--json PATH` for `chaos`, and `--chrome-trace PATH` (`spmv`, `chaos`)
//! to switch on the flight recorder and export the run as a Chrome
//! trace-event / Perfetto JSON timeline.
//!
//! Exit codes: `0` success, `1` error, `2` usage, [`EXIT_DEGRADED`] (3) when
//! the run recovered through retries, [`EXIT_FALLBACK`] (4) when any block
//! was served from the raw-CSR store or the whole job degraded to the
//! software decoder.

use recode_spmv::codec::metrics::CompressionSummary;
use recode_spmv::codec::pipeline::{CompressedMatrix, MatrixCodecConfig};
use recode_spmv::core::corpus;
use recode_spmv::core::measure::measure_udp_decomp;
use recode_spmv::core::perfmodel::SpmvPerfModel;
use recode_spmv::core::recorder;
use recode_spmv::core::report;
use recode_spmv::core::telemetry::RecorderSummary;
use recode_spmv::prelude::*;
use recode_spmv::sparse::io::{read_matrix_market_path, write_matrix_market};
use recode_spmv::sparse::spmv::SpmvKernel;
use recode_spmv::sparse::stats::MatrixStats;
use std::process::ExitCode;

/// Exit code for a run that finished bit-exact but needed retries.
const EXIT_DEGRADED: u8 = 3;
/// Exit code for a run that served blocks from the raw-CSR store or fell
/// back to the software decoder entirely.
const EXIT_FALLBACK: u8 = 4;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  recode info <matrix.mtx>\n  recode compress <matrix.mtx> -o <out.rcmx> [--config dsh|ds|snappy]\n  recode decompress <in.rcmx> -o <matrix.mtx>\n  recode spmv <matrix.mtx> [--trace <out.json>] [--chrome-trace <out.trace.json>]\n              [--overlap] [--cache-blocks N] [--iters N] [--tuned <config.json>]\n              [--inject-trap JOB] [--inject-corrupt BLOCK]\n  recode tune <matrix.mtx> [-o <config.json>] [--seed N]\n  recode report <trace.json>\n  recode trace-check <trace.json> [--bounds]\n  recode gen <family> <target_nnz> -o <matrix.mtx> [--seed N]\n  recode disasm <snappy|delta>\n  recode verify-program <file.udp | builtin:delta|snappy|huffman|dsh>\n  recode chaos [--trials N] [--seed N] [--json <out.json>] [--chrome-trace <out.trace.json>]\n  recode metrics <matrix.mtx> [-o <metrics.prom>]\n  recode bench-compare <old.json> <new.json>\n\nspmv exit codes: 0 clean, 3 degraded (retries), 4 raw-CSR/software fallback\nfamilies: {}",
        FAMILIES.join(", ")
    );
    ExitCode::from(2)
}

const FAMILIES: [&str; 11] = [
    "stencil2d",
    "stencil2d9",
    "stencil3d",
    "multidiag",
    "femband",
    "blockjac",
    "circuit",
    "rmat",
    "erdos",
    "smallworld",
    "laplacian",
];

struct Flags {
    positional: Vec<String>,
    output: Option<String>,
    config: MatrixCodecConfig,
    seed: u64,
    trace: Option<String>,
    overlap: bool,
    cache_blocks: usize,
    iters: usize,
    inject_trap: Option<usize>,
    inject_corrupt: Option<usize>,
    trials: usize,
    json: Option<String>,
    chrome_trace: Option<String>,
    tuned: Option<String>,
    bounds: bool,
}

fn parse(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        positional: Vec::new(),
        output: None,
        config: MatrixCodecConfig::udp_dsh(),
        seed: 2019,
        trace: None,
        overlap: false,
        cache_blocks: 0,
        iters: 1,
        inject_trap: None,
        inject_corrupt: None,
        trials: 500,
        json: None,
        chrome_trace: None,
        tuned: None,
        bounds: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--output" => {
                i += 1;
                f.output = Some(args.get(i).ok_or("missing value for -o")?.clone());
            }
            "--config" => {
                i += 1;
                f.config = match args.get(i).map(String::as_str) {
                    Some("dsh") => MatrixCodecConfig::udp_dsh(),
                    Some("ds") => MatrixCodecConfig::udp_ds(),
                    Some("snappy") => MatrixCodecConfig::cpu_snappy(),
                    other => return Err(format!("bad --config {other:?}")),
                };
            }
            "--trace" => {
                i += 1;
                f.trace = Some(args.get(i).ok_or("missing value for --trace")?.clone());
            }
            "--overlap" => f.overlap = true,
            "--cache-blocks" => {
                i += 1;
                f.cache_blocks =
                    args.get(i).and_then(|s| s.parse().ok()).ok_or("bad --cache-blocks value")?;
            }
            "--iters" => {
                i += 1;
                f.iters = args
                    .get(i)
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("bad --iters value (need an integer >= 1)")?;
            }
            "--seed" => {
                i += 1;
                f.seed = args.get(i).and_then(|s| s.parse().ok()).ok_or("bad --seed value")?;
            }
            "--inject-trap" => {
                i += 1;
                f.inject_trap = Some(
                    args.get(i).and_then(|s| s.parse().ok()).ok_or("bad --inject-trap value")?,
                );
            }
            "--inject-corrupt" => {
                i += 1;
                f.inject_corrupt = Some(
                    args.get(i).and_then(|s| s.parse().ok()).ok_or("bad --inject-corrupt value")?,
                );
            }
            "--trials" => {
                i += 1;
                f.trials = args
                    .get(i)
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("bad --trials value (need an integer >= 1)")?;
            }
            "--json" => {
                i += 1;
                f.json = Some(args.get(i).ok_or("missing value for --json")?.clone());
            }
            "--chrome-trace" => {
                i += 1;
                f.chrome_trace =
                    Some(args.get(i).ok_or("missing value for --chrome-trace")?.clone());
            }
            "--tuned" => {
                i += 1;
                f.tuned = Some(args.get(i).ok_or("missing value for --tuned")?.clone());
            }
            "--bounds" => f.bounds = true,
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => f.positional.push(other.to_string()),
        }
        i += 1;
    }
    Ok(f)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let flags = match parse(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match cmd.as_str() {
        "info" => cmd_info(&flags),
        "compress" => cmd_compress(&flags),
        "decompress" => cmd_decompress(&flags),
        "spmv" => cmd_spmv(&flags),
        "tune" => cmd_tune(&flags),
        "report" => cmd_report(&flags),
        "trace-check" => cmd_trace_check(&flags),
        "gen" => cmd_gen(&flags),
        "disasm" => cmd_disasm(&flags),
        "verify-program" => cmd_verify_program(&flags),
        "chaos" => cmd_chaos(&flags),
        "metrics" => cmd_metrics(&flags),
        "bench-compare" => cmd_bench_compare(&flags),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Maps a run's recovery stats onto the documented exit codes: raw-CSR or
/// software fallback beats plain degradation, which beats success.
fn exit_for(stats: &recode_spmv::core::ExecStats) -> ExitCode {
    if stats.blocks_fell_back > 0 || stats.software_decode {
        eprintln!(
            "note: {} block(s) served from the raw-CSR store{} (exit {EXIT_FALLBACK})",
            stats.blocks_fell_back,
            if stats.software_decode { ", software decode" } else { "" },
        );
        ExitCode::from(EXIT_FALLBACK)
    } else if stats.degraded {
        eprintln!(
            "note: run degraded — {} block(s) recovered via retry (exit {EXIT_DEGRADED})",
            stats.blocks_recovered
        );
        ExitCode::from(EXIT_DEGRADED)
    } else {
        ExitCode::SUCCESS
    }
}

fn load(flags: &Flags) -> Result<Csr, String> {
    let path = flags.positional.first().ok_or("missing input matrix path")?;
    read_matrix_market_path(path).map_err(|e| format!("{path}: {e}"))
}

/// Switches on the flight recorder when `--chrome-trace` was given. Called
/// before the run so every span/instant of the pipeline lands in the ring.
fn arm_recorder(flags: &Flags) {
    if flags.chrome_trace.is_some() {
        recorder::enable(recorder::DEFAULT_CAPACITY);
    }
}

/// Drains the flight recorder and writes the Chrome trace-event JSON.
/// Returns the drained events and ring stats so a `--trace` document can
/// also carry the [`RecorderSummary`].
fn finish_chrome_trace(
    path: &str,
) -> Result<(Vec<recorder::Event>, recorder::RecorderStats), String> {
    let events = recorder::drain();
    let stats = recorder::stats();
    let doc = recode_spmv::core::export_chrome_trace(&events);
    std::fs::write(path, doc.to_string_pretty()).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "chrome trace written to {path}: {} events, {} dropped (open in Perfetto or chrome://tracing)",
        events.len(),
        stats.dropped
    );
    Ok((events, stats))
}

fn cmd_info(flags: &Flags) -> Result<ExitCode, String> {
    let a = load(flags)?;
    let s = MatrixStats::compute(&a);
    println!("shape            {} x {}", s.nrows, s.ncols);
    println!("non-zeros        {} (density {:.3e})", s.nnz, s.density);
    println!("nnz/row          avg {:.1}, max {}", s.avg_nnz_per_row, s.max_nnz_per_row);
    println!("empty rows       {}", s.empty_rows);
    println!("bandwidth        {} (avg |i-j| {:.1})", s.bandwidth, s.avg_band);
    println!("avg col delta    {:.2}", s.avg_col_delta);
    println!("distinct values  {} (sampled)", s.distinct_values_sampled);
    println!("value entropy    {:.2} bits/byte", s.value_byte_entropy);
    println!("symmetric        {} (structurally: {})", s.symmetric, s.structurally_symmetric);
    let cm =
        CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).map_err(|e| e.to_string())?;
    let sum = CompressionSummary::of(&cm);
    println!(
        "DSH compression  {:.2} B/nnz (index {:.2} + value {:.2}; raw 12.00)",
        sum.bytes_per_nnz, sum.index_bytes_per_nnz, sum.value_bytes_per_nnz
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_compress(flags: &Flags) -> Result<ExitCode, String> {
    let a = load(flags)?;
    let out = flags.output.as_ref().ok_or("compress needs -o <out.rcmx>")?;
    let cm = CompressedMatrix::compress(&a, flags.config).map_err(|e| e.to_string())?;
    let json = serde_json::to_vec(&cm).map_err(|e| e.to_string())?;
    std::fs::write(out, &json).map_err(|e| e.to_string())?;
    let raw = a.nnz() * 12;
    println!(
        "{} -> {}: {} nnz, {:.2} B/nnz ({} compressed bytes vs {} raw, container {} bytes)",
        flags.positional[0],
        out,
        a.nnz(),
        cm.bytes_per_nnz(),
        cm.wire_bytes(),
        raw,
        json.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_decompress(flags: &Flags) -> Result<ExitCode, String> {
    let input = flags.positional.first().ok_or("missing input .rcmx path")?;
    let out = flags.output.as_ref().ok_or("decompress needs -o <matrix.mtx>")?;
    let json = std::fs::read(input).map_err(|e| e.to_string())?;
    let cm: CompressedMatrix = serde_json::from_slice(&json).map_err(|e| e.to_string())?;
    let a = cm.decompress().map_err(|e| e.to_string())?;
    let mut buf = Vec::new();
    write_matrix_market(&a, &mut buf).map_err(|e| e.to_string())?;
    std::fs::write(out, buf).map_err(|e| e.to_string())?;
    println!("{input} -> {out}: {} x {}, {} nnz", a.nrows(), a.ncols(), a.nnz());
    Ok(ExitCode::SUCCESS)
}

/// Applies `--inject-corrupt BLOCK`: flips a payload bit in one index-stream
/// block so CRC framing catches it on every decode attempt and the run is
/// forced through the retry → raw-CSR fallback ladder.
fn apply_injection(recoded: &mut RecodedSpmv, flags: &Flags) -> Result<(), String> {
    if let Some(b) = flags.inject_corrupt {
        let blocks = &mut recoded.compressed_mut().index_stream.blocks;
        let n = blocks.len();
        let blk = blocks
            .get_mut(b)
            .ok_or_else(|| format!("--inject-corrupt {b}: the index stream has {n} blocks"))?;
        let byte =
            blk.payload.first_mut().ok_or("--inject-corrupt: target block has no payload")?;
        *byte ^= 0x40;
    }
    Ok(())
}

/// Loads, parses, and digest-validates the `--tuned` config, if given.
/// Every failure is a hard error — a stale or foreign tuning never falls
/// back silently to the defaults.
fn tuned_for(flags: &Flags, a: &Csr) -> Result<Option<TunedConfig>, String> {
    let Some(path) = &flags.tuned else {
        return Ok(None);
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let tuned = TunedConfig::from_json_str(&text).map_err(|e| format!("{path}: {e}"))?;
    tuned.validate_for(a).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "tuned: kernel {}, stages {}, block {} B ({} candidates searched)",
        tuned.kernel.name(),
        tuned.stages.name(),
        tuned.block_bytes,
        tuned.candidates
    );
    Ok(Some(tuned))
}

fn cmd_spmv(flags: &Flags) -> Result<ExitCode, String> {
    let a = load(flags)?;
    if flags.overlap {
        return cmd_spmv_overlap(flags, &a);
    }
    if flags.iters > 1 {
        return Err("--iters needs --overlap (the batch path has no decoded-block cache)".into());
    }
    if flags.cache_blocks > 0 {
        return Err("--cache-blocks needs --overlap".into());
    }
    let tuned = tuned_for(flags, &a)?;
    let config = tuned.as_ref().map_or(flags.config, TunedConfig::codec_config);
    let kernel = tuned.as_ref().map_or(SpmvKernel::RowParallel, |t| t.kernel);
    let sys = SystemConfig::ddr4();
    let x = vec![1.0; a.ncols()];
    let y_ref = spmv(&a, &x);
    let hook = flags.inject_trap.map(|j| FaultHook::new().trap(j));
    arm_recorder(flags);
    let (recoded, y, stats) = if let Some(trace_path) = &flags.trace {
        let mut recoded = RecodedSpmv::new_traced(&a, config).map_err(|e| e.to_string())?;
        // The software decode both cross-checks losslessness and populates
        // the decode direction of the codec-stage telemetry in the trace.
        let sw = recoded.decompress_via_software().map_err(|e| e.to_string())?;
        if sw != a {
            return Err("software decode diverged from the original matrix".into());
        }
        apply_injection(&mut recoded, flags)?;
        let name = std::path::Path::new(&flags.positional[0])
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let (y, stats, mut doc) = recoded
            .spmv_traced(&sys, kernel, &x, hook.as_ref(), &name)
            .map_err(|e| e.to_string())?;
        if let Some(ct_path) = &flags.chrome_trace {
            let (events, rec_stats) = finish_chrome_trace(ct_path)?;
            doc.attach_recorder(RecorderSummary::from_events(&events, rec_stats));
        }
        let json = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(trace_path, json).map_err(|e| format!("{trace_path}: {e}"))?;
        println!(
            "trace ({}) written to {trace_path}: {} spans, {} block events, {} counters",
            doc.schema,
            doc.spans.len(),
            doc.block_events.len(),
            doc.counters.len()
        );
        (recoded, y, stats)
    } else {
        let mut recoded = RecodedSpmv::new(&a, config).map_err(|e| e.to_string())?;
        apply_injection(&mut recoded, flags)?;
        let (y, stats) =
            recoded.spmv_faulty(&sys, kernel, &x, hook.as_ref()).map_err(|e| e.to_string())?;
        if let Some(ct_path) = &flags.chrome_trace {
            finish_chrome_trace(ct_path)?;
        }
        (recoded, y, stats)
    };
    // Merge-path and partially-diagonal kernels reassociate row sums, so a
    // tuned run verifies to summation tolerance; the default row-parallel
    // path stays bit-exact.
    if tuned.is_some() {
        let worst = y
            .iter()
            .zip(&y_ref)
            .fold(0.0f64, |w, (got, want)| w.max((got - want).abs() / want.abs().max(1.0)));
        if worst > 1e-10 {
            return Err(format!(
                "tuned SpMV diverged from the uncompressed kernel (worst rel err {worst:.3e})"
            ));
        }
    } else if y != y_ref {
        return Err("recoded SpMV diverged from the uncompressed kernel".into());
    }
    println!("recoded SpMV verified against the uncompressed kernel ({} rows)", y.len());
    println!(
        "UDP: {} blocks, makespan {} cycles, {:.2} GB/s decompressed, {:.1}% lane utilization",
        stats.accel.jobs,
        stats.accel.makespan_cycles,
        stats.accel.throughput_bps() / 1e9,
        stats.accel.lane_utilization * 100.0
    );
    // The throughput measurement re-decodes sampled blocks outside the
    // retry/fallback ladder, so it only makes sense on a pristine stream.
    if flags.inject_trap.is_none() && flags.inject_corrupt.is_none() {
        let cm = recoded.compressed();
        let m = measure_udp_decomp(cm, &sys.udp, 24).map_err(|e| e.to_string())?;
        let model = SpmvPerfModel {
            bytes_per_nnz: cm.bytes_per_nnz(),
            udp_out_bps_per_accel: m.accel_out_bps.max(1e9),
        };
        println!("\nmodeled on the 100 GB/s DDR4 system ({:.2} B/nnz):", cm.bytes_per_nnz());
        print!("{}", report::scenarios(&model.evaluate_all(&sys)));
        let p = PowerSavings::compute(&sys, cm.bytes_per_nnz(), m.accel_out_bps.max(1e9));
        println!("iso-performance power: {:.1} W of {:.0} W saved", p.net_saving_w, p.max_power_w);
    }
    Ok(exit_for(&stats))
}

/// The `--overlap` arm of `recode spmv`: route through the pipelined
/// decode/multiply executor with an optional decoded-block LRU cache.
/// Multi-tile pipelined results reassociate rows that straddle tile
/// boundaries, so verification is against a 1e-10 relative tolerance
/// rather than bit equality.
fn cmd_spmv_overlap(flags: &Flags, a: &Csr) -> Result<ExitCode, String> {
    let tuned = tuned_for(flags, a)?;
    let config = tuned.as_ref().map_or(flags.config, TunedConfig::codec_config);
    let sys = SystemConfig::ddr4();
    let x = vec![1.0; a.ncols()];
    let y_ref = spmv(a, &x);
    let hook = flags.inject_trap.map(|j| FaultHook::new().trap(j));
    arm_recorder(flags);
    let mut recoded = if flags.trace.is_some() {
        RecodedSpmv::new_traced(a, config)
    } else {
        RecodedSpmv::new(a, config)
    }
    .map_err(|e| e.to_string())?;
    apply_injection(&mut recoded, flags)?;
    let overlap_config =
        OverlapConfig { overlap: true, cache_blocks: flags.cache_blocks, workers: 0 };
    // The overlap pipeline's tiled multiply is kernel-agnostic; a tuned
    // config contributes its codec stage subset and block size here, and
    // `from_tuned` re-checks the operand really carries that stream.
    let ex = match &tuned {
        Some(t) => {
            OverlapExecutor::from_tuned(&recoded, t, overlap_config).map_err(|e| e.to_string())?
        }
        None => OverlapExecutor::new(&recoded, overlap_config),
    };
    let (y, stats) = if let Some(trace_path) = &flags.trace {
        let name = std::path::Path::new(&flags.positional[0])
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let (y, stats, mut doc) =
            ex.spmv_traced(&sys, &x, hook.as_ref(), &name).map_err(|e| e.to_string())?;
        if let Some(ct_path) = &flags.chrome_trace {
            let (events, rec_stats) = finish_chrome_trace(ct_path)?;
            doc.attach_recorder(RecorderSummary::from_events(&events, rec_stats));
        }
        let json = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(trace_path, json).map_err(|e| format!("{trace_path}: {e}"))?;
        println!(
            "trace ({}) written to {trace_path}: {} spans, {} block events, {} counters",
            doc.schema,
            doc.spans.len(),
            doc.block_events.len(),
            doc.counters.len()
        );
        (y, stats)
    } else {
        let out = ex.spmv_faulty(&sys, &x, hook.as_ref()).map_err(|e| e.to_string())?;
        if let Some(ct_path) = &flags.chrome_trace {
            finish_chrome_trace(ct_path)?;
        }
        out
    };
    let worst = y
        .iter()
        .zip(&y_ref)
        .fold(0.0f64, |w, (got, want)| w.max((got - want).abs() / want.abs().max(1.0)));
    if worst > 1e-10 {
        return Err(format!(
            "pipelined SpMV diverged from the uncompressed kernel (worst rel err {worst:.3e})"
        ));
    }
    println!(
        "pipelined SpMV verified against the uncompressed kernel ({} rows, worst rel err {:.1e})",
        y.len(),
        worst
    );
    let ov = stats.overlap;
    println!(
        "overlap: {} stages on {} workers; decode {} + multiply {} cycles",
        ov.stages, ov.workers, ov.decode_cycles, ov.multiply_cycles
    );
    println!(
        "         makespan {} cycles vs {} serial ({} saved, {:.1}% lane utilization)",
        ov.overlapped_makespan_cycles,
        ov.serial_makespan_cycles,
        ov.saved_cycles(),
        stats.accel.lane_utilization * 100.0
    );
    if flags.cache_blocks > 0 {
        println!(
            "cache: capacity {} blocks; {} hits / {} misses / {} evictions ({} decoded bytes served)",
            flags.cache_blocks, ov.cache_hits, ov.cache_misses, ov.cache_evictions, ov.cache_hit_bytes
        );
    }
    if flags.iters > 1 {
        if a.nrows() != a.ncols() {
            return Err("--iters needs a square matrix".into());
        }
        let (_, per_iter) = ex.spmv_iter(&sys, &x, flags.iters - 1).map_err(|e| e.to_string())?;
        println!("\niterated multiply (decode cycles per iteration):");
        let decode: Vec<u64> = std::iter::once(ov.decode_cycles)
            .chain(per_iter.iter().map(|s| s.overlap.decode_cycles))
            .collect();
        for (i, d) in decode.iter().enumerate() {
            println!("  iter {:>3}: {d:>12} decode cycles", i + 1);
        }
        let warm_sum: u64 = decode[1..].iter().sum();
        if warm_sum == 0 {
            println!("  warm iterations paid zero decode cycles (every block served from cache)");
        } else {
            let warm_avg = warm_sum as f64 / (decode.len() - 1) as f64;
            println!("  cold/warm decode ratio: {:.1}x", decode[0] as f64 / warm_avg);
        }
    }
    Ok(exit_for(&stats))
}

/// `recode tune`: search kernel × codec-stage × block size over the input
/// matrix, print the scored candidate table, and persist the winner as a
/// digest-keyed `recode-tuned/v1` document for `recode spmv --tuned`.
/// Selection is purely by modeled cycles, so the written config is a pure
/// function of (matrix, --seed); `RECODE_TUNE_TRIALS` resizes only the
/// informational wall-clock column.
fn cmd_tune(flags: &Flags) -> Result<ExitCode, String> {
    use recode_spmv::core::tune::TRIALS_ENV;
    let a = load(flags)?;
    let input = &flags.positional[0];
    let mut opts = TuneOptions::from_env();
    opts.seed = flags.seed;
    println!(
        "tuning {} ({} x {}, {} nnz) with seed {} ({} wall trial(s); {TRIALS_ENV} resizes)...",
        input,
        a.nrows(),
        a.ncols(),
        a.nnz(),
        opts.seed,
        opts.trials
    );
    let outcome = tune_matrix(&a, &opts).map_err(|e| e.to_string())?;
    let mut ranked: Vec<&recode_spmv::core::CandidateScore> = outcome.candidates.iter().collect();
    ranked.sort_by_key(|c| c.total_cycles());
    println!(
        "\n{:<18} {:>7} {:>7} {:>13} {:>13} {:>8} {:>10}",
        "kernel", "stages", "block", "decode cyc", "multiply cyc", "B/nnz", "wall us"
    );
    for c in ranked.iter().take(10) {
        println!(
            "{:<18} {:>7} {:>7} {:>13} {:>13} {:>8.2} {:>10.1}",
            c.kernel.name(),
            c.stages.name(),
            c.block_bytes,
            c.decode_cycles,
            c.multiply_cycles,
            c.wire_bytes_per_nnz,
            c.wall_ns as f64 / 1e3
        );
    }
    if outcome.candidates.len() > 10 {
        println!("({} more candidates not shown)", outcome.candidates.len() - 10);
    }
    let cfg = &outcome.config;
    let out = flags.output.clone().unwrap_or_else(|| format!("{input}.tuned.json"));
    std::fs::write(&out, cfg.to_json_string()).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "\nwinner: kernel {}, stages {}, block {} B — {} modeled cycles ({} decode + {} multiply)",
        cfg.kernel.name(),
        cfg.stages.name(),
        cfg.block_bytes,
        cfg.modeled_total_cycles(),
        cfg.modeled_decode_cycles,
        cfg.modeled_multiply_cycles
    );
    println!("tuned config ({}) written to {out}", recode_spmv::core::TUNED_SCHEMA);
    println!("run it: recode spmv {input} --tuned {out}");
    Ok(ExitCode::SUCCESS)
}

fn load_trace(flags: &Flags) -> Result<recode_spmv::core::telemetry::TraceDocument, String> {
    let path = flags.positional.first().ok_or("missing trace.json path")?;
    let json = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_slice(&json).map_err(|e| format!("{path}: {e}"))
}

fn cmd_report(flags: &Flags) -> Result<ExitCode, String> {
    let doc = load_trace(flags)?;
    print!("{}", recode_spmv::core::telemetry::render_report(&doc));
    Ok(ExitCode::SUCCESS)
}

fn cmd_trace_check(flags: &Flags) -> Result<ExitCode, String> {
    let doc = load_trace(flags)?;
    let errs = doc.validate();
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("invariant violated: {e}");
        }
        return Err(format!("trace failed validation with {} error(s)", errs.len()));
    }
    if flags.bounds {
        check_trace_bounds(&doc)?;
    }
    println!(
        "trace OK: schema {}, matrix {} ({} nnz), {} spans, {} block events, {} counters, {} lanes profiled",
        doc.schema,
        if doc.matrix.name.is_empty() { "<unnamed>" } else { &doc.matrix.name },
        doc.matrix.nnz,
        doc.spans.len(),
        doc.block_events.len(),
        doc.counters.len(),
        doc.exec.accel.lane_profiles.len()
    );
    Ok(ExitCode::SUCCESS)
}

/// The `--bounds` arm of `recode trace-check`: rebuild the
/// table-independent builtin stage programs (inverse delta, Snappy), take
/// their statically certified [`CycleBound`] envelopes, and re-verify the
/// trace's stored cycles against them. The compiled Huffman stage is
/// per-matrix (its table is not in the trace), so it contributes no bound
/// here — every check stays sound without it.
///
/// Checks, all vacuous on empty traces:
/// 1. the rebuildable stage programs still certify a bounded envelope;
/// 2. every block event that ran on a lane (Ok/Retried) spent at least the
///    summed certified minimum of the active rebuildable stages;
/// 3. when the Huffman stage was inactive, no event exceeds the summed
///    certified maximum at the lane output-window input cap;
/// 4. each rebuildable stage's aggregate cycles fit
///    `attempts x certified max`, where attempts = jobs + retries.
fn check_trace_bounds(doc: &recode_spmv::core::telemetry::TraceDocument) -> Result<(), String> {
    use recode_spmv::core::telemetry::BlockOutcome;
    use recode_spmv::udp::isa::SCRATCHPAD_BYTES;
    use recode_spmv::udp::progs;
    // Any intermediate stage input fits the lane output window (half the
    // scratchpad), which caps the bits a later stage can consume; first
    // stages see at most one compressed block, which is smaller still.
    let bits_cap = 8 * (SCRATCHPAD_BYTES as u64 / 2);
    let st = &doc.exec.accel.stage_cycles;
    let mut stages = Vec::new();
    for (name, image, active_cycles) in [
        ("snappy", progs::snappy::build().map_err(|e| e.to_string())?, st.snappy),
        ("delta", progs::delta::build().map_err(|e| e.to_string())?, st.delta),
    ] {
        let bound =
            image.verify_report.cycle_bound.filter(|b| b.max.is_some()).ok_or_else(|| {
                format!("builtin `{name}` no longer certifies a bounded envelope")
            })?;
        stages.push((name, bound, active_cycles));
    }
    let mut violations = Vec::new();
    let floor: u64 = stages.iter().filter(|(_, _, c)| *c > 0).map(|(_, b, _)| b.min).sum();
    let huffman_active = st.huffman > 0;
    let event_cap: u64 = stages
        .iter()
        .filter(|(_, _, c)| *c > 0)
        .map(|(_, b, _)| b.max.expect("filtered above").max_for(bits_cap))
        .sum();
    let mut ran = 0u64;
    for e in &doc.block_events {
        if e.outcome == BlockOutcome::FellBack {
            continue;
        }
        ran += 1;
        if e.cycles < floor {
            violations.push(format!(
                "block event (job {}, {:?}) spent {} cycles, under the certified floor {floor}",
                e.job, e.outcome, e.cycles
            ));
        }
        if !huffman_active && e.cycles > event_cap {
            violations.push(format!(
                "block event (job {}, {:?}) spent {} cycles, over the certified cap {event_cap}",
                e.job, e.outcome, e.cycles
            ));
        }
    }
    let attempts = (doc.exec.accel.jobs + doc.exec.blocks_retried) as u64;
    for (name, bound, stage_total) in &stages {
        let cap = attempts.saturating_mul(bound.max.expect("filtered above").max_for(bits_cap));
        if *stage_total > cap {
            violations.push(format!(
                "stage `{name}` spent {stage_total} cycles across {attempts} attempt(s), \
                 over the certified aggregate cap {cap}"
            ));
        }
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("certified bound violated: {v}");
        }
        return Err(format!(
            "trace escaped its certified envelopes ({} violation(s))",
            violations.len()
        ));
    }
    println!(
        "certified bounds OK: {ran} lane event(s) >= floor {floor}, stage aggregates within \
         {} certified envelope(s){}",
        stages.len(),
        if huffman_active { " (huffman stage active: per-matrix, not re-checked)" } else { "" }
    );
    Ok(())
}

fn cmd_disasm(flags: &Flags) -> Result<ExitCode, String> {
    let which = flags.positional.first().map_or("", String::as_str);
    let image = match which {
        "snappy" => recode_spmv::udp::progs::snappy::build().map_err(|e| e.to_string())?,
        "delta" => recode_spmv::udp::progs::delta::build().map_err(|e| e.to_string())?,
        other => return Err(format!("disasm takes `snappy` or `delta`, got `{other}`")),
    };
    print!("{}", image.disassemble());
    Ok(ExitCode::SUCCESS)
}

/// Renders the certified per-block bounds table for a verified image: one
/// row per placed code word (a word IS a basic block on this machine) with
/// its per-visit cycle cost, capped for very large compiled programs, then
/// the program's certified envelope.
fn render_bounds_table(image: &recode_spmv::udp::Image) -> String {
    use recode_spmv::udp::machine::DecodedTransition;
    use std::fmt::Write as _;
    const MAX_ROWS: usize = 32;
    let mut out = String::new();
    let _ = writeln!(out, "-- certified cycle bounds: {} --", image.name);
    let _ = writeln!(out, "{:>6}  {:>9}  {:>7}  terminator", "addr", "cyc/visit", "actions");
    let mut shown = 0usize;
    let mut total = 0usize;
    for addr in 0..image.words.len() as u32 {
        let Some(block) = image.decode(addr) else { continue };
        total += 1;
        if shown >= MAX_ROWS {
            continue;
        }
        shown += 1;
        let term = match block.transition {
            DecodedTransition::Halt => "halt".to_string(),
            DecodedTransition::Jump(a) => format!("jump @{a}"),
            DecodedTransition::DispatchSym { bits, .. } => format!("dispatch.sym {bits}"),
            DecodedTransition::DispatchPeek { bits, .. } => format!("dispatch.peek {bits}"),
            DecodedTransition::DispatchReg { rs, .. } => format!("dispatch.reg r{rs}"),
            DecodedTransition::Branch { taken, .. } => format!("branch @{taken}"),
        };
        let marker = if addr == image.entry { " <entry>" } else { "" };
        let _ = writeln!(
            out,
            "{addr:>6}  {:>9}  {:>7}  {term}{marker}",
            1 + block.actions.len(),
            block.actions.len()
        );
    }
    if total > shown {
        let _ = writeln!(out, "  ({} more blocks not shown)", total - shown);
    }
    match image.verify_report.cycle_bound {
        Some(b) => {
            let _ = writeln!(out, "program envelope: {b} cycles over the whole input");
        }
        None => {
            let _ = writeln!(out, "program envelope: none (no reachable halt)");
        }
    }
    out
}

/// `recode verify-program`: run the static verifier on a `.udp` assembly
/// file (findings annotated with source lines) or one of the shipped
/// programs by name (`builtin:delta`, `builtin:snappy`, `builtin:huffman`,
/// or `builtin:dsh` for the whole pipeline; bare names still accepted).
/// Prints the severity-ranked report and the certified per-block bounds
/// table; exits nonzero when a program carries `Error` findings — the same
/// findings that make `Lane::run` refuse the image.
fn cmd_verify_program(flags: &Flags) -> Result<ExitCode, String> {
    use recode_spmv::udp::{asm, machine, progs, Image};
    let target = flags.positional.first().ok_or(
        "verify-program needs a .udp file or a builtin (builtin:delta|snappy|huffman|dsh)",
    )?;
    let build_builtin = |name: &str| -> Option<Result<Image, String>> {
        match name {
            "delta" => Some(progs::delta::build().map_err(|e| e.to_string())),
            "snappy" => Some(progs::snappy::build().map_err(|e| e.to_string())),
            // A representative compiled decoder: uniform 8-bit code lengths
            // (Kraft-complete over 256 symbols).
            "huffman" => Some(progs::huffman::compile(&[8u8; 256]).map_err(|e| e.to_string())),
            _ => None,
        }
    };
    let spelled = target.strip_prefix("builtin:").unwrap_or(target);
    let images: Vec<Image> = if spelled == "dsh" {
        // The whole decode pipeline, in stage order.
        vec![
            build_builtin("huffman").unwrap()?,
            build_builtin("snappy").unwrap()?,
            build_builtin("delta").unwrap()?,
        ]
    } else if let Some(img) = build_builtin(spelled) {
        vec![img?]
    } else if target.starts_with("builtin:") {
        return Err(format!("unknown builtin `{spelled}` (try delta|snappy|huffman|dsh)"));
    } else {
        let path = target;
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let name = std::path::Path::new(path)
            .file_stem()
            .map_or_else(|| "program".into(), |s| s.to_string_lossy().into_owned());
        let (program, map) =
            asm::assemble_text_with_map(&name, &src).map_err(|e| format!("{path}: {e}"))?;
        let mut image = machine::assemble(&program).map_err(|e| e.to_string())?;
        image.verify_report.attach_lines(&map);
        vec![image]
    };
    let mut errors = 0usize;
    for image in &images {
        print!("{}", image.verify_report);
        print!("{}", render_bounds_table(image));
        errors += image.verify_report.error_count();
    }
    if errors > 0 {
        return Err(format!("`{target}` rejected: {errors} error finding(s)"));
    }
    Ok(ExitCode::SUCCESS)
}

/// `recode chaos`: run a seeded chaos campaign over the resilient
/// executors. The campaign is a pure function of `--seed` and `--trials`,
/// so a failing run reproduces exactly from its printed parameters.
/// `--json` writes the machine-readable summary (the CI artifact).
fn cmd_chaos(flags: &Flags) -> Result<ExitCode, String> {
    use recode_spmv::core::chaos::{run_campaign, ChaosConfig};
    let config = ChaosConfig { trials: flags.trials, seed: flags.seed, ..ChaosConfig::default() };
    println!("running {} chaos trials with seed {:#x}...", config.trials, config.seed);
    arm_recorder(flags);
    let summary = run_campaign(&config);
    if let Some(ct_path) = &flags.chrome_trace {
        finish_chrome_trace(ct_path)?;
    }
    print!("{}", summary.render());
    if let Some(path) = &flags.json {
        std::fs::write(path, summary.to_json()).map_err(|e| format!("{path}: {e}"))?;
        println!("summary written to {path}");
    }
    if summary.healthy() {
        Ok(ExitCode::SUCCESS)
    } else {
        Err("chaos campaign violated the resilience contract".into())
    }
}

/// `recode metrics`: run one budgeted job through the resilient executor
/// (default budget, fresh circuit breaker) and print the sealed trace
/// document as a Prometheus text exposition — the scrape surface for the
/// pipeline's counters, gauges, and span timings.
fn cmd_metrics(flags: &Flags) -> Result<ExitCode, String> {
    use recode_spmv::core::MetricsSnapshot;
    let a = load(flags)?;
    let sys = SystemConfig::ddr4();
    // Arm the flight recorder before compression so the exposition carries
    // per-kind event counters — including the jit_compile events fired
    // while the decoder's lane images are assembled just below.
    recorder::enable(recorder::DEFAULT_CAPACITY);
    let recoded = RecodedSpmv::new_traced(&a, flags.config).map_err(|e| e.to_string())?;
    let name = std::path::Path::new(&flags.positional[0])
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let mut breaker = CircuitBreaker::new(BreakerConfig::default());
    let (report, doc) =
        recoded.run_job_traced(&sys, None, &JobBudget::default(), Some(&mut breaker), &name);
    let mut doc =
        doc.ok_or_else(|| format!("job produced no trace document (state {:?})", report.state))?;
    doc.attach_recorder(RecorderSummary::from_events(&recorder::drain(), recorder::stats()));
    let text = MetricsSnapshot::from_document(&doc).render_prometheus();
    match &flags.output {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
            println!("metrics written to {path} ({} bytes)", text.len());
        }
        None => print!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// `recode bench-compare`: diff two bench-snapshot JSON files and fail
/// (exit 1) when a gated deterministic metric regressed beyond the
/// threshold. Wall-clock metrics are reported but never gate — baselines
/// are blessed on whatever machine ran them.
fn cmd_bench_compare(flags: &Flags) -> Result<ExitCode, String> {
    use recode_spmv::core::benchcmp::GATE_THRESHOLD;
    let old_path = flags.positional.first().ok_or("bench-compare needs <old.json> <new.json>")?;
    let new_path = flags.positional.get(1).ok_or("bench-compare needs <old.json> <new.json>")?;
    let old = std::fs::read_to_string(old_path).map_err(|e| format!("{old_path}: {e}"))?;
    let new = std::fs::read_to_string(new_path).map_err(|e| format!("{new_path}: {e}"))?;
    let report = recode_spmv::core::compare_snapshots(&old, &new)?;
    print!("{}", report.render());
    if report.has_regressions() {
        return Err(format!(
            "{} gated metric(s) regressed more than {:.0}% beyond noise",
            report.regressions().len(),
            GATE_THRESHOLD * 100.0
        ));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_gen(flags: &Flags) -> Result<ExitCode, String> {
    let family = flags.positional.first().ok_or("gen needs a family")?;
    let target: usize =
        flags.positional.get(1).and_then(|s| s.parse().ok()).ok_or("gen needs a target nnz")?;
    let out = flags.output.as_ref().ok_or("gen needs -o <matrix.mtx>")?;
    // Reuse the corpus parameterization: scan corpus entries for the family
    // and rescale, or build directly for the common families.
    let spec = corpus::spec_for_family(family, target, flags.seed)
        .ok_or_else(|| format!("unknown family {family} (try: {})", FAMILIES.join(", ")))?;
    let a = recode_spmv::sparse::gen::generate(&spec, flags.seed);
    let mut buf = Vec::new();
    write_matrix_market(&a, &mut buf).map_err(|e| e.to_string())?;
    std::fs::write(out, buf).map_err(|e| e.to_string())?;
    println!("{family} -> {out}: {} x {}, {} nnz", a.nrows(), a.ncols(), a.nnz());
    Ok(ExitCode::SUCCESS)
}
