//! # recode-spmv
//!
//! A full-system Rust reproduction of *"Programmable Acceleration for
//! Sparse Matrices in a Data-movement Limited World"* (Rawal, Fang, Chien —
//! IPDPS 2019): a heterogeneous architecture that pairs CPU cores with the
//! UDP, a software-programmable data-recoding accelerator, so sparse
//! matrices can live in memory in a compressed Delta→Snappy→Huffman format
//! and be decompressed on the fly — cutting SpMV memory traffic from 12 to
//! ~5 bytes per non-zero (≈2.4× speedup at fixed power, or ≈50–65% memory
//! power savings at fixed performance).
//!
//! This crate is a facade: it re-exports the five subsystem crates.
//!
//! ```
//! use recode_spmv::prelude::*;
//!
//! // Build a small PDE matrix, compress it the way the paper's system
//! // stores it, and run SpMV through the simulated CPU-UDP machine.
//! let a = generate(
//!     &GenSpec::Stencil2D { nx: 32, ny: 32, points: 5, values: ValueModel::StencilCoeffs },
//!     42,
//! );
//! let sys = SystemConfig::ddr4();
//! let recoded = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
//! let x = vec![1.0; a.ncols()];
//! let (y, stats) = recoded.spmv(&sys, SpmvKernel::Serial, &x).unwrap();
//! assert_eq!(y, spmv(&a, &x)); // lossless: bit-identical to uncompressed
//! assert!(stats.compressed_bytes < a.nnz() * 12);
//! ```

pub use recode_codec as codec;
pub use recode_core as core;
pub use recode_mem as mem;
pub use recode_sparse as sparse;
pub use recode_udp as udp;

/// One-stop imports for applications.
pub mod prelude {
    pub use recode_codec::pipeline::{CompressedMatrix, MatrixCodecConfig, PipelineConfig};
    pub use recode_core::arch::Scenario;
    pub use recode_core::perfmodel::SpmvPerfModel;
    pub use recode_core::{
        run_campaign, tune_matrix, BreakerConfig, BreakerState, CampaignSummary, ChaosConfig,
        CircuitBreaker, JobBudget, JobReport, JobState, OverlapConfig, OverlapExecutor,
        PowerSavings, RecodedSpmv, SystemConfig, TrialOutcome, TuneError, TuneOptions, TunedConfig,
    };
    pub use recode_sparse::prelude::*;
    pub use recode_udp::accel::FaultHook;
    pub use recode_udp::pool::{LanePool, PoolConfig};
    pub use recode_udp::{Accelerator, Lane};
}
