//! Allocation-regression suite (ISSUE 5): the hot paths must not touch the
//! heap in steady state.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! warms each path (first calls are allowed to size buffers), then asserts
//! a **zero** allocation delta across many further iterations:
//!
//! 1. `Lane::run_into` with a reused output buffer — one decode per
//!    dispatched block, zero heap traffic;
//! 2. `OverlapExecutor` warm-cache tile decodes — a cache hit is an `Arc`
//!    clone, not a decode, and must stay allocation-free;
//! 3. the flight recorder (ISSUE 7): the disabled path is one relaxed
//!    atomic load per would-be event and must allocate **zero** times per
//!    dispatched block, and the *enabled* steady state (thread-local
//!    buffer warm, ring preallocated) must also allocate nothing.
//!
//! Everything lives in one `#[test]` so no concurrent harness thread can
//! allocate between the two counter reads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use recode_spmv::codec::pipeline::{MatrixCodecConfig, Pipeline, PipelineConfig};
use recode_spmv::core::exec::RecodedSpmv;
use recode_spmv::core::overlap::{OverlapConfig, OverlapExecutor};
use recode_spmv::core::telemetry::StreamKind;
use recode_spmv::prelude::*;
use recode_spmv::udp::progs::DshDecoder;
use recode_spmv::udp::{Lane, RunConfig};

/// System allocator with an allocation-event counter. `dealloc` is not
/// counted: freeing is fine, acquiring is what the hot paths must avoid.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::SeqCst)
}

fn banded_index_stream(n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n * 4);
    for i in 0..n {
        let base = (i / 3) as u32;
        let col = base + (i % 3) as u32;
        out.extend_from_slice(&col.to_le_bytes());
    }
    out
}

/// Steady-state `Lane::run_into` over predecoded images: after one warm-up
/// pass per block the interpreter must run every stage of every block
/// without a single allocator call.
fn lane_run_into_is_allocation_free() {
    let data = banded_index_stream(8000);
    let config = PipelineConfig::dsh_udp();
    let pipe = Pipeline::train(config, &data).unwrap();
    let stream = pipe.encode_stream(&data).unwrap();
    let decoder = DshDecoder::new(config, pipe.table().map(|t| t.lengths.as_slice())).unwrap();
    let images: Vec<_> =
        [&decoder.huffman, &decoder.snappy, &decoder.delta].into_iter().flatten().collect();
    assert!(images.len() == 3, "dsh_udp must enable all three stages");
    let cfg = RunConfig::default();
    let mut lane = Lane::new();
    let mut out = Vec::new();

    // Warm-up pass: sizes the output buffer to the largest block's decode.
    for block in &stream.blocks {
        lane.run_into(images[0], &block.payload, block.bit_len, cfg, &mut out)
            .expect("huffman stage decodes its own encoder output");
    }

    let before = alloc_events();
    let mut total_cycles = 0u64;
    for _ in 0..3 {
        for block in &stream.blocks {
            let stats = lane
                .run_into(images[0], &block.payload, block.bit_len, cfg, &mut out)
                .expect("huffman stage decodes its own encoder output");
            total_cycles += stats.cycles;
        }
    }
    let delta = alloc_events() - before;
    assert!(total_cycles > 0);
    assert_eq!(
        delta,
        0,
        "steady-state Lane::run_into allocated {delta} times across {} block decodes",
        stream.blocks.len() * 3
    );
}

/// Warm-cache tile decodes on the overlap executor: once a block is
/// resident, serving it is an `Arc` clone and must not allocate.
fn warm_cache_tiles_are_allocation_free() {
    let a = generate(
        &GenSpec::FemBand {
            n: 600,
            band: 8,
            fill: 0.7,
            values: ValueModel::MixedRepeated { distinct: 8 },
        },
        7,
    );
    let codec_cfg = MatrixCodecConfig {
        index: PipelineConfig { block_bytes: 2048, ..PipelineConfig::dsh_udp() },
        value: PipelineConfig { block_bytes: 2048, ..PipelineConfig::sh_udp() },
    };
    let recoded = RecodedSpmv::new(&a, codec_cfg).unwrap();
    let cm = recoded.compressed();
    let n_index = cm.index_stream.blocks.len();
    let n_value = cm.value_stream.blocks.len();
    assert!(n_index >= 2 && n_value >= 2, "need several blocks per stream");
    let exec = OverlapExecutor::new(
        &recoded,
        OverlapConfig { cache_blocks: n_index + n_value, ..Default::default() },
    );

    // Cold pass populates the cache (allocates: decodes + inserts).
    for pos in 0..n_index {
        exec.decode_one_for_test(StreamKind::Index, pos).unwrap();
    }
    for pos in 0..n_value {
        exec.decode_one_for_test(StreamKind::Value, pos).unwrap();
    }
    let hits_before = exec.cache_stats().hits;

    let before = alloc_events();
    for _ in 0..5 {
        for pos in 0..n_index {
            exec.decode_one_for_test(StreamKind::Index, pos).unwrap();
        }
        for pos in 0..n_value {
            exec.decode_one_for_test(StreamKind::Value, pos).unwrap();
        }
    }
    let delta = alloc_events() - before;
    let served = exec.cache_stats().hits - hits_before;
    assert_eq!(served, 5 * (n_index + n_value) as u64, "every warm pass must be served from cache");
    assert_eq!(delta, 0, "warm-cache tile decode allocated {delta} times over {served} hits");
}

/// Recorder off (the default): `record()` is a relaxed load + branch. A
/// full batch decode — one `record` attempt per dispatched block plus the
/// surrounding span guards — must not allocate through the recorder.
fn disabled_recorder_records_allocation_free() {
    use recode_spmv::core::recorder::{self, EventKind, Track};
    assert!(!recorder::is_enabled(), "recorder must start disabled");
    let before = alloc_events();
    for block in 0..4096u64 {
        recorder::record(
            EventKind::BlockOutcome,
            Track::lane(block as usize % 64),
            "block",
            block,
            0,
        );
        let _span = recorder::span(Track::MAIN, "exec.decode_batch");
    }
    let delta = alloc_events() - before;
    assert_eq!(delta, 0, "disabled recorder allocated {delta} times over 4096 dispatched blocks");
}

/// Recorder on, steady state: the ring is preallocated by `enable()` and
/// the thread-local buffer is sized on first use, so after a warm-up burst
/// further events (including ring overwrite once full) allocate nothing.
fn enabled_recorder_steady_state_is_allocation_free() {
    use recode_spmv::core::recorder::{self, EventKind, Track};
    recorder::enable(1024);
    // Warm-up: first record on this thread sizes the thread-local buffer.
    for block in 0..2048u64 {
        recorder::record(EventKind::BlockOutcome, Track::lane(0), "block", block, 0);
    }
    let before = alloc_events();
    for block in 0..8192u64 {
        recorder::record(
            EventKind::BlockOutcome,
            Track::lane(block as usize % 64),
            "block",
            block,
            0,
        );
        let _span = recorder::span(Track::worker(1), "multiply_tile");
    }
    let delta = alloc_events() - before;
    let stats = recorder::stats();
    recorder::disable();
    assert!(stats.dropped > 0, "the 1024-slot ring must have overwritten under this load");
    assert_eq!(delta, 0, "enabled recorder steady state allocated {delta} times over 8192 blocks");
}

#[test]
fn hot_paths_do_not_allocate_in_steady_state() {
    lane_run_into_is_allocation_free();
    warm_cache_tiles_are_allocation_free();
    disabled_recorder_records_allocation_free();
    enabled_recorder_steady_state_is_allocation_free();
}
