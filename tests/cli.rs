//! End-to-end test of the `recode` CLI binary: generate, inspect, compress,
//! decompress, verify, and run the simulated SpMV — the full workflow a
//! downstream user drives from the shell.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_recode"))
}

fn tmpdir() -> PathBuf {
    let d = std::env::temp_dir().join(format!("recode-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

#[test]
fn gen_info_compress_decompress_spmv_workflow() {
    let dir = tmpdir();
    let mtx = dir.join("m.mtx");
    let rcmx = dir.join("m.rcmx");
    let back = dir.join("back.mtx");

    // gen
    let out = bin()
        .args(["gen", "femband", "60000", "-o", mtx.to_str().unwrap(), "--seed", "7"])
        .output()
        .expect("run gen");
    assert!(out.status.success(), "gen: {}", String::from_utf8_lossy(&out.stderr));

    // info
    let out = bin().args(["info", mtx.to_str().unwrap()]).output().expect("run info");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("non-zeros"), "{text}");
    assert!(text.contains("DSH compression"), "{text}");

    // compress
    let out = bin()
        .args(["compress", mtx.to_str().unwrap(), "-o", rcmx.to_str().unwrap()])
        .output()
        .expect("run compress");
    assert!(out.status.success(), "compress: {}", String::from_utf8_lossy(&out.stderr));
    assert!(rcmx.exists());

    // decompress
    let out = bin()
        .args(["decompress", rcmx.to_str().unwrap(), "-o", back.to_str().unwrap()])
        .output()
        .expect("run decompress");
    assert!(out.status.success(), "decompress: {}", String::from_utf8_lossy(&out.stderr));

    // The round trip must preserve the matrix exactly.
    let a = recode_spmv::sparse::io::read_matrix_market_path(&mtx).unwrap();
    let b = recode_spmv::sparse::io::read_matrix_market_path(&back).unwrap();
    assert_eq!(a, b, "CLI compress/decompress round trip");

    // spmv (verifies internally against the uncompressed kernel)
    let out = bin().args(["spmv", mtx.to_str().unwrap()]).output().expect("run spmv");
    assert!(out.status.success(), "spmv: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verified against the uncompressed kernel"), "{text}");
    assert!(text.contains("Decomp(UDP+CPU)"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spmv_trace_report_and_check_workflow() {
    let dir = std::env::temp_dir().join(format!("recode-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let mtx = dir.join("t.mtx");
    let trace = dir.join("trace.json");

    let out = bin()
        .args(["gen", "stencil2d", "50000", "-o", mtx.to_str().unwrap(), "--seed", "3"])
        .output()
        .expect("run gen");
    assert!(out.status.success(), "gen: {}", String::from_utf8_lossy(&out.stderr));

    // spmv --trace writes the telemetry document alongside the normal report.
    let out = bin()
        .args(["spmv", mtx.to_str().unwrap(), "--trace", trace.to_str().unwrap()])
        .output()
        .expect("run spmv --trace");
    assert!(out.status.success(), "spmv: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    // The batch traced path reports pool.* counters, which are v2 content.
    assert!(text.contains("trace (recode-trace/v2) written"), "{text}");
    assert!(text.contains("verified against the uncompressed kernel"), "{text}");

    // The file is a valid, internally consistent TraceDocument.
    let doc: recode_spmv::core::telemetry::TraceDocument =
        serde_json::from_slice(&std::fs::read(&trace).expect("read trace")).expect("parse");
    assert_eq!(doc.schema, recode_spmv::core::telemetry::TRACE_SCHEMA);
    assert!(doc.validate().is_empty(), "{:?}", doc.validate());
    assert_eq!(doc.matrix.name, "t");
    assert!(!doc.exec.accel.lane_profiles.is_empty());

    // `recode report` renders it.
    let out = bin().args(["report", trace.to_str().unwrap()]).output().expect("run report");
    assert!(out.status.success(), "report: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("recode trace report"), "{text}");
    assert!(text.contains("exec.decode_batch"), "{text}");

    // `recode trace-check` accepts it...
    let out =
        bin().args(["trace-check", trace.to_str().unwrap()]).output().expect("run trace-check");
    assert!(out.status.success(), "trace-check: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("trace OK"));

    // `--bounds` additionally re-verifies the stored per-stage cycles
    // against the certified envelopes of the rebuildable stage programs.
    let out = bin()
        .args(["trace-check", trace.to_str().unwrap(), "--bounds"])
        .output()
        .expect("run trace-check --bounds");
    assert!(out.status.success(), "trace-check --bounds: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("certified bounds OK"));

    // A trace whose stage cycles escape the certified envelope exits
    // nonzero under --bounds (plain trace-check does not re-verify them).
    let inflated = dir.join("inflated.json");
    let json = std::fs::read_to_string(&trace).unwrap();
    let snappy_cycles = doc.exec.accel.stage_cycles.snappy;
    std::fs::write(
        &inflated,
        json.replace(
            &format!("\"snappy\": {snappy_cycles}"),
            &format!("\"snappy\": {}", u64::MAX / 2),
        ),
    )
    .unwrap();
    let out = bin()
        .args(["trace-check", inflated.to_str().unwrap(), "--bounds"])
        .output()
        .expect("run trace-check --bounds inflated");
    assert!(!out.status.success(), "inflated stage cycles must fail --bounds");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("certified"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // ...and rejects a tampered schema with a nonzero exit.
    let tampered = dir.join("tampered.json");
    let json = std::fs::read_to_string(&trace).unwrap();
    std::fs::write(&tampered, json.replace("recode-trace/v2", "recode-trace/v0")).unwrap();
    let out = bin()
        .args(["trace-check", tampered.to_str().unwrap()])
        .output()
        .expect("run trace-check tampered");
    assert!(!out.status.success(), "tampered trace must fail validation");
    assert!(String::from_utf8_lossy(&out.stderr).contains("schema"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spmv_exit_codes_distinguish_degraded_and_fallback_runs() {
    let dir = std::env::temp_dir().join(format!("recode-cli-exit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let mtx = dir.join("e.mtx");
    let out = bin()
        .args(["gen", "stencil2d", "30000", "-o", mtx.to_str().unwrap(), "--seed", "5"])
        .output()
        .expect("run gen");
    assert!(out.status.success(), "gen: {}", String::from_utf8_lossy(&out.stderr));

    // Clean run: exit 0.
    let out = bin().args(["spmv", mtx.to_str().unwrap()]).output().expect("run spmv");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    // A transient trap forces a retry: the run recovers bit-exact but the
    // exit code reports the degradation.
    let out = bin()
        .args(["spmv", mtx.to_str().unwrap(), "--inject-trap", "0"])
        .output()
        .expect("run spmv --inject-trap");
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verified against the uncompressed kernel"), "{text}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("degraded"), "stderr notes the cause");

    // A corrupt block exhausts retries and is served from the raw-CSR
    // store: still bit-exact, exit 4.
    let out = bin()
        .args(["spmv", mtx.to_str().unwrap(), "--inject-corrupt", "0"])
        .output()
        .expect("run spmv --inject-corrupt");
    assert_eq!(out.status.code(), Some(4), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("raw-CSR"), "stderr notes the cause");

    // The overlap executor reports through the same codes.
    let out = bin()
        .args(["spmv", mtx.to_str().unwrap(), "--overlap", "--inject-trap", "0"])
        .output()
        .expect("run spmv --overlap --inject-trap");
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_subcommand_runs_a_seeded_campaign_and_writes_json() {
    let dir = std::env::temp_dir().join(format!("recode-cli-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let json_path = dir.join("campaign.json");
    let out = bin()
        .args(["chaos", "--trials", "30", "--seed", "11", "--json", json_path.to_str().unwrap()])
        .output()
        .expect("run chaos");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("HEALTHY"), "{text}");
    assert!(text.contains("injection points:"), "{text}");
    let json = std::fs::read_to_string(&json_path).expect("campaign json");
    assert!(json.contains("\"trials\":30"), "{json}");
    assert!(json.contains("\"healthy\":true"), "{json}");
    assert!(json.contains("\"hung\":0"), "{json}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_program_prints_certified_bounds_for_builtins() {
    // Every builtin spelling prints the findings report, the per-block
    // bounds table, and a certified envelope; `builtin:dsh` covers the
    // whole pipeline. Bare names stay accepted for compatibility.
    for target in ["builtin:delta", "builtin:snappy", "builtin:huffman", "builtin:dsh", "delta"] {
        let out = bin().args(["verify-program", target]).output().expect("run verify-program");
        assert!(out.status.success(), "{target}: {}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("certified cycle envelope"), "{target}: {text}");
        assert!(text.contains("-- certified cycle bounds"), "{target}: {text}");
        assert!(text.contains("program envelope: ["), "{target}: {text}");
    }
    let out = bin()
        .args(["verify-program", "builtin:dsh"])
        .output()
        .expect("run verify-program builtin:dsh");
    let text = String::from_utf8_lossy(&out.stdout);
    for prog in ["udp-huffman-decode", "udp-snappy-decode", "udp-delta-decode"] {
        assert!(text.contains(prog), "dsh must verify all three stages: {text}");
    }
    let out = bin().args(["verify-program", "builtin:nope"]).output().expect("run verify-program");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown builtin"));
}

#[test]
fn cli_rejects_bad_usage() {
    let out = bin().output().expect("run bare");
    assert!(!out.status.success());
    let out = bin().args(["info", "/nonexistent/file.mtx"]).output().expect("run info");
    assert!(!out.status.success());
    let out =
        bin().args(["gen", "nosuchfamily", "1000", "-o", "/tmp/x.mtx"]).output().expect("gen");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown family"), "{err}");
}
