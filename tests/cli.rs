//! End-to-end test of the `recode` CLI binary: generate, inspect, compress,
//! decompress, verify, and run the simulated SpMV — the full workflow a
//! downstream user drives from the shell.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_recode"))
}

fn tmpdir() -> PathBuf {
    let d = std::env::temp_dir().join(format!("recode-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

#[test]
fn gen_info_compress_decompress_spmv_workflow() {
    let dir = tmpdir();
    let mtx = dir.join("m.mtx");
    let rcmx = dir.join("m.rcmx");
    let back = dir.join("back.mtx");

    // gen
    let out = bin()
        .args(["gen", "femband", "60000", "-o", mtx.to_str().unwrap(), "--seed", "7"])
        .output()
        .expect("run gen");
    assert!(out.status.success(), "gen: {}", String::from_utf8_lossy(&out.stderr));

    // info
    let out = bin().args(["info", mtx.to_str().unwrap()]).output().expect("run info");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("non-zeros"), "{text}");
    assert!(text.contains("DSH compression"), "{text}");

    // compress
    let out = bin()
        .args(["compress", mtx.to_str().unwrap(), "-o", rcmx.to_str().unwrap()])
        .output()
        .expect("run compress");
    assert!(out.status.success(), "compress: {}", String::from_utf8_lossy(&out.stderr));
    assert!(rcmx.exists());

    // decompress
    let out = bin()
        .args(["decompress", rcmx.to_str().unwrap(), "-o", back.to_str().unwrap()])
        .output()
        .expect("run decompress");
    assert!(out.status.success(), "decompress: {}", String::from_utf8_lossy(&out.stderr));

    // The round trip must preserve the matrix exactly.
    let a = recode_spmv::sparse::io::read_matrix_market_path(&mtx).unwrap();
    let b = recode_spmv::sparse::io::read_matrix_market_path(&back).unwrap();
    assert_eq!(a, b, "CLI compress/decompress round trip");

    // spmv (verifies internally against the uncompressed kernel)
    let out = bin().args(["spmv", mtx.to_str().unwrap()]).output().expect("run spmv");
    assert!(out.status.success(), "spmv: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verified against the uncompressed kernel"), "{text}");
    assert!(text.contains("Decomp(UDP+CPU)"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_bad_usage() {
    let out = bin().output().expect("run bare");
    assert!(!out.status.success());
    let out = bin().args(["info", "/nonexistent/file.mtx"]).output().expect("run info");
    assert!(!out.status.success());
    let out = bin().args(["gen", "nosuchfamily", "1000", "-o", "/tmp/x.mtx"]).output().expect("gen");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown family"), "{err}");
}
