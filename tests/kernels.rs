//! Differential SpMV suite: every kernel and every executor must agree on
//! every matrix family.
//!
//! For each matrix in the gallery (one instance per `sparse::gen` family
//! plus the MatrixMarket fixtures under `tests/fixtures/`), `y = A x` is
//! computed every way the system offers — all five CPU kernels (serial,
//! row-parallel, merge-path, SELL-C-σ, partially-diagonal), the batch
//! recoded executor under each of those kernels, and the pipelined overlap
//! executor under all four {overlap, cache} settings — and every result
//! must match the serial reference to a 1e-10 relative tolerance.
//! Merge-path and partially-diagonal reassociate row sums and the
//! pipelined executor merges per-tile partials; everything else is
//! bit-exact, but one tolerance keeps the oracle uniform.
//!
//! The `asym12.mtx` fixture is built to stress the grown kernels: a fully
//! dense row for SELL-C-σ's σ-window sorting, two broken diagonal runs for
//! partially-diagonal extraction, plus empty and singleton rows.

use recode_spmv::codec::faults::SplitMix64;
use recode_spmv::prelude::*;
use recode_spmv::sparse::gen::KroneckerBase;
use recode_spmv::sparse::spmv::spmv_with;

const REL_TOL: f64 = 1e-10;

/// One small instance of every generator family (11 of them, matching
/// `GenSpec::family()`).
fn gallery() -> Vec<(String, Csr)> {
    let specs: Vec<GenSpec> = vec![
        GenSpec::Stencil2D { nx: 24, ny: 24, points: 5, values: ValueModel::StencilCoeffs },
        GenSpec::Stencil2D { nx: 16, ny: 16, points: 9, values: ValueModel::StencilCoeffs },
        GenSpec::Stencil3D { nx: 8, ny: 8, nz: 8, points: 7, values: ValueModel::StencilCoeffs },
        GenSpec::MultiDiagonal {
            n: 400,
            offsets: vec![-19, -1, 0, 1, 19],
            values: ValueModel::MixedRepeated { distinct: 4 },
        },
        GenSpec::FemBand {
            n: 300,
            band: 12,
            fill: 0.5,
            values: ValueModel::QuantizedGaussian { levels: 64 },
        },
        GenSpec::BlockJacobian {
            nblocks: 30,
            block: 8,
            coupling: 2.0,
            values: ValueModel::MixedRepeated { distinct: 6 },
        },
        GenSpec::Circuit { n: 350, avg_deg: 3.0, hubs: 4, values: ValueModel::Ones },
        GenSpec::Rmat { scale: 8, edge_factor: 6, values: ValueModel::Ones },
        GenSpec::ErdosRenyi {
            n: 300,
            avg_deg: 5.0,
            values: ValueModel::MixedRepeated { distinct: 3 },
        },
        GenSpec::Kronecker { base: KroneckerBase::Star, power: 5, values: ValueModel::Ones },
        GenSpec::SmallWorld { n: 256, k: 3, rewire: 0.1, values: ValueModel::Ones },
        GenSpec::Laplacian { scale: 8, edge_factor: 4 },
    ];
    let mut out: Vec<(String, Csr)> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let a = generate(spec, 2019 + i as u64);
            (format!("{}#{}", spec.family(), i), a)
        })
        .collect();
    for fixture in ["mixed9.mtx", "sym6.mtx", "asym12.mtx"] {
        let path = format!("{}/tests/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
        let a = recode_spmv::sparse::io::read_matrix_market_path(&path)
            .unwrap_or_else(|e| panic!("{path}: {e}"));
        out.push((fixture.to_string(), a));
    }
    out
}

/// Deterministic dense vector in [-1, 1) — a stronger differential probe
/// than all-ones (catches column-index mixups that ones would mask).
fn probe_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.f64() * 2.0 - 1.0).collect()
}

fn assert_close(name: &str, how: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{name}/{how}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let err = (g - w).abs() / w.abs().max(1.0);
        assert!(
            err <= REL_TOL,
            "{name}/{how}: row {i} diverged: got {g}, want {w} (rel err {err:.3e})"
        );
    }
}

#[test]
fn every_kernel_and_executor_agrees_on_every_family() {
    let sys = SystemConfig::ddr4();
    for (name, a) in gallery() {
        let x = probe_vector(a.ncols(), 0xD1FF ^ a.nnz() as u64);
        let y_ref = spmv(&a, &x);

        for kernel in SpmvKernel::ALL {
            let y = spmv_with(kernel, &a, &x);
            assert_close(&name, &format!("{kernel:?}"), &y, &y_ref);
        }

        let recoded = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh())
            .unwrap_or_else(|e| panic!("{name}: compress failed: {e}"));
        for kernel in SpmvKernel::ALL {
            let (y_batch, _) = recoded
                .spmv(&sys, kernel, &x)
                .unwrap_or_else(|e| panic!("{name}: batch executor ({kernel:?}) failed: {e}"));
            assert_close(&name, &format!("batch-recoded/{kernel:?}"), &y_batch, &y_ref);
        }

        for overlap in [false, true] {
            for cache_blocks in [0usize, 1024] {
                let ex = OverlapExecutor::new(
                    &recoded,
                    OverlapConfig { overlap, cache_blocks, workers: 0 },
                );
                let (y, stats) = ex
                    .spmv(&sys, &x)
                    .unwrap_or_else(|e| panic!("{name}: overlap executor failed: {e}"));
                let how = format!("pipelined(overlap={overlap},cache={cache_blocks})");
                assert_close(&name, &how, &y, &y_ref);
                assert_eq!(stats.overlap.enabled, overlap, "{name}/{how}: mode flag drifted");
                if cache_blocks == 0 {
                    assert_eq!(
                        stats.overlap.cache_hits + stats.overlap.cache_misses,
                        0,
                        "{name}/{how}: disabled cache recorded traffic"
                    );
                }
            }
        }
    }
}

#[test]
fn fixtures_have_the_shapes_the_suite_relies_on() {
    let base = format!("{}/tests/fixtures", env!("CARGO_MANIFEST_DIR"));
    let mixed =
        recode_spmv::sparse::io::read_matrix_market_path(format!("{base}/mixed9.mtx")).unwrap();
    assert_eq!((mixed.nrows(), mixed.ncols(), mixed.nnz()), (9, 9, 21));
    // Row 6 (0-based 5) is empty; row 4 (0-based 3) is fully dense.
    assert_eq!(mixed.row_ptr()[6] - mixed.row_ptr()[5], 0);
    assert_eq!(mixed.row_ptr()[4] - mixed.row_ptr()[3], 9);

    let sym = recode_spmv::sparse::io::read_matrix_market_path(format!("{base}/sym6.mtx")).unwrap();
    assert_eq!((sym.nrows(), sym.ncols()), (6, 6));
    assert!(sym.nnz() > 10, "symmetric expansion should add mirrored entries");
    assert!(sym.is_symmetric(1e-12));

    let asym =
        recode_spmv::sparse::io::read_matrix_market_path(format!("{base}/asym12.mtx")).unwrap();
    assert_eq!((asym.nrows(), asym.ncols(), asym.nnz()), (12, 12, 31));
    // Row 2 (0-based 1) is fully dense — the σ-sorting stressor; rows 10
    // and 12 (0-based 9, 11) are empty; row 11 (0-based 10) is a singleton.
    assert_eq!(asym.row_ptr()[2] - asym.row_ptr()[1], 12);
    assert_eq!(asym.row_ptr()[10] - asym.row_ptr()[9], 0);
    assert_eq!(asym.row_ptr()[12] - asym.row_ptr()[11], 0);
    assert_eq!(asym.row_ptr()[11] - asym.row_ptr()[10], 1);

    // Partially-diagonal extraction must find exactly the two planted runs
    // (main diagonal at 9/12 occupancy, +2 at 8/10) and nothing else.
    let p = recode_spmv::sparse::formats::PartialDiag::from_csr(&asym, 0.6).unwrap();
    assert_eq!(p.offsets(), &[0, 2]);
    assert_eq!(p.diag_nnz(), 17);

    // σ-window sorting must pay for itself against the dense row: a sorted
    // slicing wastes no more padding than an unsorted (σ = 1) one.
    let sorted = recode_spmv::sparse::formats::SellCs::from_csr(&asym, 4, 12).unwrap();
    let unsorted = recode_spmv::sparse::formats::SellCs::from_csr(&asym, 4, 1).unwrap();
    assert!(sorted.bytes_per_nnz() < unsorted.bytes_per_nnz());
}
