//! End-to-end fault-injection suite for the recoded-SpMV pipeline.
//!
//! Every trial injects one seeded fault — a stream mutation from the codec's
//! [`FaultInjector`] or an accelerator-side trap/stall from a [`FaultHook`] —
//! and then demands exactly one of two outcomes:
//!
//! 1. **bit-exact recovery** with `degraded == true` and nonzero
//!    retry/fallback counters (or a clean result when the fault landed on
//!    dead bytes / was a pure stall), or
//! 2. a **typed error** that names the offending block.
//!
//! Panics and silently wrong results both fail the suite. The trial count
//! is ≥ 256 across all fault classes, per the robustness acceptance bar.

use recode_spmv::codec::faults::{FaultInjector, FaultKind};
use recode_spmv::codec::pipeline::{CompressedMatrix, MatrixCodecConfig};
use recode_spmv::core::error::ExecError;
use recode_spmv::core::exec::RecodedSpmv;
use recode_spmv::core::SystemConfig;
use recode_spmv::prelude::*;
use recode_spmv::udp::FaultHook;

fn test_matrix() -> Csr {
    generate(
        &GenSpec::FemBand {
            n: 700,
            band: 10,
            fill: 0.6,
            values: ValueModel::MixedRepeated { distinct: 8 },
        },
        99,
    )
}

/// The paper's stage mix, but 2 KB blocks: several blocks per stream (so
/// drop/reorder faults have targets) at a fraction of the simulation cost.
fn small_block_config() -> MatrixCodecConfig {
    MatrixCodecConfig {
        index: PipelineConfig { block_bytes: 2048, ..PipelineConfig::dsh_udp() },
        value: PipelineConfig { block_bytes: 2048, ..PipelineConfig::sh_udp() },
    }
}

/// Outcome bookkeeping across the whole campaign.
#[derive(Default, Debug)]
struct Tally {
    recovered_degraded: usize,
    clean: usize,
    typed_error: usize,
}

/// Runs one stream-mutation trial; panics (failing the test) on silent
/// corruption or an error without block context.
fn run_stream_trial(
    a: &Csr,
    clean_cm: &CompressedMatrix,
    seed: u64,
    kind: FaultKind,
    hit_values: bool,
    with_store: bool,
    tally: &mut Tally,
) {
    let mut cm = clean_cm.clone();
    let mut inj = FaultInjector::new(seed);
    let report = if hit_values {
        inj.inject(&mut cm.value_stream, kind)
    } else {
        inj.inject(&mut cm.index_stream, kind)
    };

    let r = if with_store {
        RecodedSpmv::from_compressed_with_store(
            cm,
            Some(recode_spmv::core::exec::RawFallbackStore::from_csr(a)),
        )
        .expect("decoder construction is fault-independent")
    } else {
        RecodedSpmv::from_compressed(cm).expect("decoder construction is fault-independent")
    };

    let sys = SystemConfig::ddr4();
    match r.decompress_via_udp(&sys) {
        Ok((b, stats)) => {
            assert_eq!(
                &b, a,
                "seed {seed} kind {kind} (values={hit_values}): decode differs from original \
                 without an error — silent corruption"
            );
            if report.is_some() && stats.degraded {
                assert!(
                    stats.blocks_retried > 0 || stats.blocks_fell_back > 0,
                    "degraded run must count retries or fallbacks"
                );
                tally.recovered_degraded += 1;
            } else {
                // No-op mutation (e.g. truncation of an empty payload) or a
                // fault on bytes the decode never depends on.
                tally.clean += 1;
            }
        }
        Err(e) => {
            assert!(
                report.is_some(),
                "seed {seed} kind {kind}: error {e} from an uncorrupted stream"
            );
            match &e {
                ExecError::Udp(u) => assert!(
                    u.block().is_some() || u.codec_error().is_some(),
                    "seed {seed} kind {kind}: untyped context in {e}"
                ),
                ExecError::Unrecoverable { block, .. } => {
                    assert!(block.is_some(), "seed {seed} kind {kind}: no block in {e}");
                }
                ExecError::Reassembly(_) | ExecError::Codec(_) => {}
                // These trials run unbudgeted, panic-free plans; the
                // resilience-only terminal states must never appear here.
                ExecError::DeadlineExceeded { .. } | ExecError::WorkerPanic { .. } => {
                    panic!("seed {seed} kind {kind}: unexpected resilience error {e}")
                }
            }
            tally.typed_error += 1;
        }
    }
}

#[test]
fn seeded_stream_faults_recover_or_error_never_corrupt() {
    let a = test_matrix();
    let clean = CompressedMatrix::compress(&a, small_block_config()).unwrap();
    let mut tally = Tally::default();
    let mut trials = 0usize;
    // 2 store modes x 2 streams x 6 kinds x 12 seeds = 288 trials.
    for with_store in [true, false] {
        for hit_values in [false, true] {
            for (ki, kind) in FaultKind::ALL.into_iter().enumerate() {
                for s in 0..12u64 {
                    let seed = 1 + s + 100 * ki as u64 + 10_000 * u64::from(hit_values);
                    run_stream_trial(&a, &clean, seed, kind, hit_values, with_store, &mut tally);
                    trials += 1;
                }
            }
        }
    }
    assert!(trials >= 256, "need >=256 trials, ran {trials}");
    // The campaign must actually exercise both recovery paths.
    assert!(tally.recovered_degraded > 0, "no trial recovered via degradation: {tally:?}");
    assert!(tally.typed_error > 0, "no trial produced a typed error: {tally:?}");
}

#[test]
fn injected_lane_traps_recover_transparently() {
    let a = test_matrix();
    let r = RecodedSpmv::new(&a, small_block_config()).unwrap();
    let sys = SystemConfig::ddr4();
    let n_jobs =
        r.compressed().index_stream.blocks.len() + r.compressed().value_stream.blocks.len();
    assert!(n_jobs >= 2, "matrix too small for trap trials");
    for trial in 0..32usize {
        let hook = FaultHook::new().trap(trial % n_jobs).trap((trial * 7 + 1) % n_jobs);
        let (b, stats) = r.decompress_via_udp_faulty(&sys, Some(&hook)).unwrap();
        assert_eq!(b, a, "trial {trial}: trap recovery must stay bit-exact");
        assert!(stats.degraded, "trial {trial}: traps must mark the run degraded");
        assert!(stats.blocks_retried > 0);
        assert_eq!(stats.blocks_fell_back, 0, "transient traps never need the raw store");
    }
}

#[test]
fn injected_dma_stalls_only_cost_cycles() {
    let a = test_matrix();
    let r = RecodedSpmv::new(&a, small_block_config()).unwrap();
    let sys = SystemConfig::ddr4();
    for trial in 0..8u64 {
        let hook = FaultHook::new().stall(trial as usize, 50_000 * (trial + 1));
        let (b, stats) = r.decompress_via_udp_faulty(&sys, Some(&hook)).unwrap();
        assert_eq!(b, a);
        assert_eq!(stats.accel.injected_stall_cycles, 50_000 * (trial + 1));
        assert!(!stats.degraded, "stalls are slowdown, not degradation");
    }
}

#[test]
fn retry_cycles_fold_into_makespan_under_traps() {
    let a = test_matrix();
    let r = RecodedSpmv::new(&a, small_block_config()).unwrap();
    let sys = SystemConfig::ddr4();
    let (_, clean) = r.decompress_via_udp(&sys).unwrap();
    assert_eq!(clean.retry_cycles, 0, "clean run has no retry cycles");
    let hook = FaultHook::new().trap(0).trap(1).trap(2);
    let (b, stats) = r.decompress_via_udp_faulty(&sys, Some(&hook)).unwrap();
    assert_eq!(b, a);
    assert!(stats.retry_cycles > 0, "trap retries must report their cycles");
    // Trapped jobs cost nothing in the batch and their full decode cycles
    // on retry, so the folded totals do the same work over a longer
    // critical path — the makespan is honest about recovery cost.
    assert_eq!(stats.accel.busy_cycles, clean.accel.busy_cycles);
    assert!(stats.accel.makespan_cycles > clean.accel.makespan_cycles);
    let util = stats.accel.busy_cycles as f64
        / (stats.accel.makespan_cycles as f64 * stats.accel.lanes as f64);
    assert!(
        (stats.accel.lane_utilization - util).abs() < 1e-12,
        "utilization must be recomputed over the folded totals"
    );
}

#[test]
fn telemetry_events_record_fault_outcomes() {
    use recode_spmv::core::telemetry::{BlockOutcome, Telemetry};
    let a = test_matrix();
    let mut r = RecodedSpmv::new(&a, small_block_config()).unwrap();
    // Index block 1 is CRC-corrupt (falls back); the first value job traps
    // transiently (recovers via retry).
    r.compressed_mut().index_stream.blocks[1].payload[0] ^= 0x01;
    let n_index = r.compressed().index_stream.blocks.len();
    let hook = FaultHook::new().trap(n_index);
    let sys = SystemConfig::ddr4();
    let mut tel = Telemetry::new();
    let (b, stats) = r.decompress_via_udp_traced(&sys, Some(&hook), Some(&mut tel)).unwrap();
    assert_eq!(b, a);
    let evs = tel.block_events();
    assert_eq!(evs.len(), stats.accel.jobs, "one event per job");
    assert_eq!(evs[1].outcome, BlockOutcome::FellBack);
    assert_eq!(evs[1].cycles, 0);
    assert_eq!(evs[n_index].outcome, BlockOutcome::Retried);
    assert!(evs[n_index].cycles > 0);
    let non_ok = evs.iter().filter(|e| e.outcome != BlockOutcome::Ok).count();
    assert_eq!(non_ok, 2, "exactly the two faulted jobs deviate");
    assert_eq!(tel.counter("exec.blocks_fell_back"), 1);
    assert!(tel.counter("exec.blocks_retried") >= 1);
    assert_eq!(tel.counter("exec.retry_cycles"), stats.retry_cycles);
}

/// Relative-tolerance check for the pipelined executor: tile-merge
/// reassociates rows that straddle block boundaries, so recovery is
/// numerically identical only to 1e-10, not bit-exact.
fn assert_spmv_close(seed: u64, kind: FaultKind, y: &[f64], y_ref: &[f64]) {
    for (i, (g, w)) in y.iter().zip(y_ref).enumerate() {
        let err = (g - w).abs() / w.abs().max(1.0);
        assert!(
            err <= 1e-10,
            "seed {seed} kind {kind}: row {i} diverged after recovery \
             (got {g}, want {w}) — silent corruption through the pipeline"
        );
    }
}

/// Clean-run context shared by every overlap fault trial: the matrix, the
/// probe vector, its reference product, and the uncorrupted streams.
#[derive(Clone, Copy)]
struct OverlapProbe<'a> {
    a: &'a Csr,
    x: &'a [f64],
    y_ref: &'a [f64],
    clean_cm: &'a CompressedMatrix,
}

/// One stream-mutation trial routed through the pipelined overlap executor
/// (decode of tile i+1 overlapped with multiply of tile i, decoded-block
/// cache enabled) instead of the batch path. Same oracle: recover within
/// tolerance or produce a typed error naming the block.
fn run_overlap_stream_trial(
    probe: &OverlapProbe<'_>,
    seed: u64,
    kind: FaultKind,
    hit_values: bool,
    with_store: bool,
    tally: &mut Tally,
) {
    use recode_spmv::core::{OverlapConfig, OverlapExecutor};
    let OverlapProbe { a, x, y_ref, clean_cm } = *probe;
    let mut cm = clean_cm.clone();
    let mut inj = FaultInjector::new(seed);
    let report = if hit_values {
        inj.inject(&mut cm.value_stream, kind)
    } else {
        inj.inject(&mut cm.index_stream, kind)
    };

    let r = if with_store {
        RecodedSpmv::from_compressed_with_store(
            cm,
            Some(recode_spmv::core::exec::RawFallbackStore::from_csr(a)),
        )
        .expect("decoder construction is fault-independent")
    } else {
        RecodedSpmv::from_compressed(cm).expect("decoder construction is fault-independent")
    };
    let ex =
        OverlapExecutor::new(&r, OverlapConfig { overlap: true, cache_blocks: 64, workers: 0 });

    let sys = SystemConfig::ddr4();
    match ex.spmv(&sys, x) {
        Ok((y, stats)) => {
            assert_spmv_close(seed, kind, &y, y_ref);
            if report.is_some() && stats.degraded {
                assert!(
                    stats.blocks_retried > 0 || stats.blocks_fell_back > 0,
                    "degraded pipelined run must count retries or fallbacks"
                );
                tally.recovered_degraded += 1;
            } else {
                tally.clean += 1;
            }
        }
        Err(e) => {
            assert!(
                report.is_some(),
                "seed {seed} kind {kind}: error {e} from an uncorrupted stream"
            );
            match &e {
                ExecError::Udp(u) => assert!(
                    u.block().is_some() || u.codec_error().is_some(),
                    "seed {seed} kind {kind}: untyped context in {e}"
                ),
                ExecError::Unrecoverable { block, .. } => {
                    assert!(block.is_some(), "seed {seed} kind {kind}: no block in {e}");
                }
                ExecError::Reassembly(_) | ExecError::Codec(_) => {}
                // These trials run unbudgeted, panic-free plans; the
                // resilience-only terminal states must never appear here.
                ExecError::DeadlineExceeded { .. } | ExecError::WorkerPanic { .. } => {
                    panic!("seed {seed} kind {kind}: unexpected resilience error {e}")
                }
            }
            tally.typed_error += 1;
        }
    }
}

#[test]
fn seeded_stream_faults_through_the_overlap_executor() {
    let a = test_matrix();
    let clean = CompressedMatrix::compress(&a, small_block_config()).unwrap();
    let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 29) % 13) as f64 - 6.0).collect();
    let y_ref = spmv(&a, &x);
    let probe = OverlapProbe { a: &a, x: &x, y_ref: &y_ref, clean_cm: &clean };
    let mut tally = Tally::default();
    let mut trials = 0usize;
    // Same 288-trial grid as the batch campaign, through the pipeline:
    // 2 store modes x 2 streams x 6 kinds x 12 seeds.
    for with_store in [true, false] {
        for hit_values in [false, true] {
            for (ki, kind) in FaultKind::ALL.into_iter().enumerate() {
                for s in 0..12u64 {
                    let seed = 1 + s + 100 * ki as u64 + 10_000 * u64::from(hit_values);
                    run_overlap_stream_trial(
                        &probe, seed, kind, hit_values, with_store, &mut tally,
                    );
                    trials += 1;
                }
            }
        }
    }
    assert!(trials >= 256, "need >=256 trials, ran {trials}");
    assert!(tally.recovered_degraded > 0, "no trial recovered via degradation: {tally:?}");
    assert!(tally.typed_error > 0, "no trial produced a typed error: {tally:?}");
}

#[test]
fn overlap_recovery_keeps_blocks_in_position_and_traces_stay_valid() {
    use recode_spmv::core::telemetry::BlockOutcome;
    use recode_spmv::core::{OverlapConfig, OverlapExecutor};
    let a = test_matrix();
    let mut r = RecodedSpmv::new(&a, small_block_config()).unwrap();
    // A CRC-corrupt index block (falls back mid-pipeline) plus a transient
    // trap and a DMA stall on other jobs: recovery must not disturb tile
    // ordering, and the sealed trace must satisfy every invariant.
    r.compressed_mut().index_stream.blocks[1].payload[0] ^= 0x01;
    let n_index = r.compressed().index_stream.blocks.len();
    let hook = FaultHook::new().trap(n_index).stall(n_index + 1, 25_000);
    let sys = SystemConfig::ddr4();
    let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
    let y_ref = spmv(&a, &x);
    let ex =
        OverlapExecutor::new(&r, OverlapConfig { overlap: true, cache_blocks: 256, workers: 0 });
    let (y, stats, doc) = ex.spmv_traced(&sys, &x, Some(&hook), "fault_pipeline").unwrap();
    assert_spmv_close(0, FaultKind::BitFlip, &y, &y_ref);
    assert!(stats.degraded);
    assert_eq!(stats.blocks_fell_back, 1, "the CRC-broken block needs the raw store");
    assert!(stats.blocks_retried > 0, "the trapped value job recovers via retry");
    assert_eq!(stats.accel.injected_stall_cycles, 25_000);
    let errs = doc.validate();
    assert!(errs.is_empty(), "trace invariants violated under faults: {errs:?}");
    // Events stay in job order, and each fault shows up exactly where it
    // was injected — proof the pipeline kept recovered blocks in position.
    assert!(doc.block_events.windows(2).all(|w| w[0].job < w[1].job));
    assert_eq!(doc.block_events[1].outcome, BlockOutcome::FellBack);
    assert_eq!(doc.block_events[n_index].outcome, BlockOutcome::Retried);

    // A second run hits the warm cache and must agree with the first.
    let (y2, stats2) = ex.spmv(&sys, &x).unwrap();
    assert_eq!(y, y2, "warm-cache rerun of the same executor must be bit-identical");
    assert!(stats2.overlap.cache_hits > 0, "rerun should be served from the cache");
}

#[test]
fn spmv_stays_correct_under_combined_faults() {
    let a = test_matrix();
    let mut r = RecodedSpmv::new(&a, small_block_config()).unwrap();
    // Corrupt one index block (CRC path) while also trapping a value job.
    r.compressed_mut().index_stream.blocks[0].payload[0] ^= 0x01;
    let n_index = r.compressed().index_stream.blocks.len();
    let hook = FaultHook::new().trap(n_index); // first value job
    let sys = SystemConfig::ddr4();
    let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 29) % 13) as f64 - 6.0).collect();
    let (y, stats) = r.spmv_faulty(&sys, SpmvKernel::Serial, &x, Some(&hook)).unwrap();
    assert_eq!(y, recode_spmv::sparse::spmv::spmv(&a, &x));
    assert!(stats.degraded);
    assert!(stats.blocks_retried > 0);
    assert_eq!(stats.blocks_fell_back, 1, "the CRC-broken block needs the raw store");
    assert!(stats.fallback_bytes > 0);
    assert!(stats.mem_stream_seconds > 0.0);
}
