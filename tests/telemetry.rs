//! Integration tests for the observability path: a traced SpMV must produce
//! a schema-stable JSON document whose numbers are internally consistent —
//! spans fit inside the wall clock, per-lane cycles sum to the batch totals,
//! traffic is attributed by source, and serde round-trips losslessly.

use recode_spmv::codec::pipeline::MatrixCodecConfig;
use recode_spmv::core::exec::RecodedSpmv;
use recode_spmv::core::telemetry::{RecorderSummary, TraceDocument, TRACE_SCHEMA, TRACE_SCHEMA_V1};
use recode_spmv::core::SystemConfig;
use recode_spmv::prelude::*;
use recode_spmv::sparse::spmv::SpmvKernel;

fn test_matrix() -> Csr {
    generate(
        &GenSpec::Stencil2D {
            nx: 70,
            ny: 70,
            points: 9,
            values: ValueModel::QuantizedGaussian { levels: 32 },
        },
        23,
    )
}

fn traced_run() -> (Csr, TraceDocument) {
    let a = test_matrix();
    let r = RecodedSpmv::new_traced(&a, MatrixCodecConfig::udp_dsh()).unwrap();
    // Exercise the software decoder too, so the codec-stage snapshot has
    // both directions populated.
    let sw = r.decompress_via_software().unwrap();
    assert_eq!(sw, a);
    let sys = SystemConfig::ddr4();
    let x = vec![1.0; a.ncols()];
    let (_, _, doc) = r.spmv_traced(&sys, SpmvKernel::Serial, &x, None, "stencil70").unwrap();
    (a, doc)
}

#[test]
fn trace_document_round_trips_through_json() {
    let (_, doc) = traced_run();
    let json = serde_json::to_string(&doc).unwrap();
    let back: TraceDocument = serde_json::from_str(&json).unwrap();
    assert_eq!(back.schema, TRACE_SCHEMA);
    assert_eq!(back.matrix, doc.matrix);
    assert_eq!(back.system, doc.system);
    assert_eq!(back.wall_ns_total, doc.wall_ns_total);
    assert_eq!(back.spans, doc.spans);
    assert_eq!(back.counters, doc.counters);
    assert_eq!(back.block_cycles, doc.block_cycles);
    assert_eq!(back.block_events, doc.block_events);
    assert_eq!(back.codec_stages, doc.codec_stages);
    assert_eq!(back.mem_traffic, doc.mem_traffic);
    let errs = back.validate();
    assert!(errs.is_empty(), "round-tripped trace must still validate: {errs:?}");
}

#[test]
fn span_wall_times_fit_inside_the_total() {
    let (_, doc) = traced_run();
    assert!(doc.wall_ns_total > 0);
    assert!(
        doc.spans_wall_ns() <= doc.wall_ns_total,
        "phase spans ({} ns) exceed the run's wall clock ({} ns)",
        doc.spans_wall_ns(),
        doc.wall_ns_total
    );
    // Every expected phase is present, in execution order, and the
    // simulated decode actually cost wall time.
    let names: Vec<&str> = doc.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "exec.decode_batch",
            "exec.reassemble",
            "exec.mem_stream",
            "exec.dma",
            "exec.cpu_multiply"
        ],
        "clean run emits exactly the happy-path phases"
    );
    let batch = &doc.spans[0];
    assert!(batch.wall_ns > 0, "simulating the decode takes host time");
    assert!(batch.modeled_seconds > 0.0, "and models accelerator time");
    assert!(batch.bytes > 0);
}

#[test]
fn per_lane_and_per_stage_breakdowns_are_consistent() {
    let (a, doc) = traced_run();
    let accel = &doc.exec.accel;
    assert_eq!(accel.lane_profiles.len(), accel.lanes, "one profile per lane");
    let lane_busy: u64 = accel.lane_profiles.iter().map(|p| p.busy_cycles).sum();
    assert_eq!(lane_busy, accel.busy_cycles, "lane profiles tile the busy cycles");
    // Opcode-class attribution covers every busy cycle of the batch.
    assert_eq!(accel.opclass.total(), accel.busy_cycles);
    assert!(accel.opclass.stream > 0, "DSH decode is stream-dominated");
    // Stage cycles partition each job's cycles, so they sum to busy too.
    assert_eq!(accel.stage_cycles.total(), accel.busy_cycles);
    assert!(accel.stage_cycles.huffman > 0);
    assert!(accel.stage_cycles.snappy > 0);
    assert!(accel.stage_cycles.delta > 0);
    // Codec-stage timing has both directions after an encode + sw decode.
    assert!(doc.codec_stages.encode.huffman.calls > 0);
    assert!(doc.codec_stages.decode.huffman.calls > 0);
    assert_eq!(doc.codec_stages.decode.delta.bytes_out, (a.nnz() * 4) as u64);
    // Every block produced an event and the histogram matches.
    assert_eq!(doc.block_events.len(), accel.jobs);
    assert_eq!(doc.block_cycles.count, accel.jobs as u64);
    assert_eq!(doc.block_cycles.sum, accel.busy_cycles);
}

#[test]
fn memory_traffic_is_attributed_by_source() {
    let (a, doc) = traced_run();
    assert!(doc.counter("mem.read.compressed_stream") > 0);
    assert!(doc.counter("mem.read.row_ptr") >= (a.nrows() as u64 + 1) * 8);
    assert_eq!(doc.counter("mem.read.vectors"), (a.ncols() * 8) as u64);
    assert_eq!(doc.counter("mem.write.vectors"), (a.nrows() * 8) as u64);
    assert_eq!(doc.counter("mem.read.fallback_refetch"), 0, "clean run never re-fetches");
    let by_total: u64 =
        doc.mem_traffic.by_source.iter().map(|s| s.read_bytes + s.write_bytes).sum();
    assert_eq!(by_total, doc.mem_traffic.total_bytes);
    assert!(doc.mem_traffic.stream_seconds > 0.0);
    assert!(doc.mem_traffic.transfer_joules > 0.0);
}

#[test]
fn render_report_mentions_every_section() {
    let (_, doc) = traced_run();
    let text = recode_spmv::core::telemetry::render_report(&doc);
    for needle in [
        "recode trace report",
        "stencil70",
        "exec.decode_batch",
        "opcode classes",
        "decode stages",
        "log2 buckets",
        "memory traffic",
        "compressed_stream",
        "software codec stages",
        "degradation",
        // v2: the batch path reports lane-pool activity.
        "-- resilience --",
        "lane pool:",
    ] {
        assert!(text.contains(needle), "report missing `{needle}`:\n{text}");
    }
}

/// The batch traced path reports `pool.*` counters, which are v2 content:
/// the document must stamp itself `recode-trace/v2` and carry the pool's
/// checkout accounting.
#[test]
fn batch_traced_documents_are_schema_v2_with_pool_counters() {
    let (_, doc) = traced_run();
    assert_eq!(doc.schema, TRACE_SCHEMA);
    assert!(doc.has_v2_content());
    assert!(doc.counter("pool.checkouts") > 0, "every decode job checks a lane out");
    assert_eq!(
        doc.counter("pool.checkouts"),
        doc.counter("pool.recycled_hits") + doc.counter("pool.fresh_builds"),
        "checkouts partition into recycled hits and fresh builds"
    );
    assert!(doc.validate().is_empty(), "{:?}", doc.validate());
}

/// Attaching a flight-recorder summary promotes the schema and renders the
/// recorder section; an inconsistent summary (more drained than recorded)
/// fails validation.
#[test]
fn recorder_summary_promotes_schema_and_is_validated() {
    let (_, mut doc) = traced_run();
    let mut by_kind = std::collections::BTreeMap::new();
    by_kind.insert("block_outcome".to_string(), 40u64);
    by_kind.insert("span_begin".to_string(), 2u64);
    doc.attach_recorder(RecorderSummary { recorded: 42, dropped: 0, capacity: 65536, by_kind });
    assert_eq!(doc.schema, TRACE_SCHEMA);
    assert!(doc.validate().is_empty(), "{:?}", doc.validate());
    let text = recode_spmv::core::telemetry::render_report(&doc);
    assert!(text.contains("flight recorder: 42 events recorded"), "{text}");
    assert!(text.contains("block_outcome"), "{text}");

    doc.recorder.as_mut().unwrap().recorded = 10;
    let errs = doc.validate();
    assert!(
        errs.iter().any(|e| e.contains("recorder summary")),
        "drained > recorded must be flagged: {errs:?}"
    );
}

/// Certified-bound floor (ISSUE 9): a block event that claims to have run
/// on a lane (Ok or Retried) but recorded zero cycles contradicts every
/// certified `CycleBound` minimum, so `validate()` must flag it. Fallback
/// events legitimately carry zero and stay exempt.
#[test]
fn zero_cycle_lane_events_fail_validation() {
    let (_, mut doc) = traced_run();
    assert!(doc.validate().is_empty(), "{:?}", doc.validate());
    let first = doc.block_events.first().copied().expect("traced run has block events");
    let stolen = first.cycles;
    doc.block_events[0].cycles = 0;
    // Keep the histogram consistent so only the floor check fires.
    doc.block_cycles.sum -= stolen;
    let errs = doc.validate();
    assert!(
        errs.iter().any(|e| e.contains("0 cycles")),
        "zero-cycle lane event must be flagged: {errs:?}"
    );
}

/// Back-compat (ISSUE 7 satellite): the PR 3 golden fixture is a v1
/// document and must still load and validate as v1 — `validate()` accepts
/// both schema generations. Parsing uses serde, so the offline stub build
/// skips gracefully (same pattern as the golden-trace suite).
#[test]
fn golden_v1_fixture_still_validates_as_v1() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_trace_v1.json");
    let golden = std::fs::read_to_string(path).expect("golden fixture present");
    let parsed = std::panic::catch_unwind(|| {
        serde_json::from_str::<TraceDocument>(&golden).map_err(|e| e.to_string())
    });
    let Ok(result) = parsed else {
        eprintln!("serde_json unavailable (stubbed build) — skipping");
        return;
    };
    let doc = result.expect("v1 fixture parses");
    assert_eq!(doc.schema, TRACE_SCHEMA_V1);
    assert!(!doc.has_v2_content(), "the v1 fixture must not carry v2 content");
    assert!(doc.recorder.is_none(), "absent recorder field defaults to None");
    let errs = doc.validate();
    assert!(errs.is_empty(), "v1 fixture must validate under the v2 code: {errs:?}");
    // And its report renders without a resilience section.
    let text = recode_spmv::core::telemetry::render_report(&doc);
    assert!(text.contains("recode trace report (recode-trace/v1)"), "{text}");
    assert!(!text.contains("-- resilience --"), "{text}");
}
