//! Auto-tuner contract tests: same-seed reproducibility, byte-stable
//! persistence, typed rejection of stale configs, and the full CLI flow
//! (`recode tune` → `recode spmv --tuned`).
//!
//! Determinism is the load-bearing property: the persisted `TunedConfig`
//! must be a pure function of (matrix, seed) — invariant to wall-clock
//! noise and to `RECODE_TUNE_TRIALS` resizing — so tuned runs reproduce
//! across hosts and CI shards.

use recode_spmv::core::tune::{StageSubset, TUNED_SCHEMA};
use recode_spmv::prelude::*;
use std::path::PathBuf;
use std::process::Command;

fn sample_matrix() -> Csr {
    generate(
        &GenSpec::Stencil2D { nx: 14, ny: 11, points: 5, values: ValueModel::StencilCoeffs },
        7,
    )
}

fn opts(seed: u64, trials: usize) -> TuneOptions {
    TuneOptions { seed, trials, sys: SystemConfig::ddr4() }
}

#[test]
fn same_seed_produces_an_identical_config_regardless_of_trials() {
    let a = sample_matrix();
    let one = tune_matrix(&a, &opts(2019, 1)).unwrap();
    let three = tune_matrix(&a, &opts(2019, 3)).unwrap();
    assert_eq!(one.config, three.config);
    assert_eq!(one.config.to_json_string(), three.config.to_json_string());
    // Modeled scores are wall-clock-free, so the whole scored field —
    // not just the winner — must agree between the two runs.
    for (l, r) in one.candidates.iter().zip(&three.candidates) {
        assert_eq!(
            (l.kernel, l.stages, l.block_bytes, l.decode_cycles, l.multiply_cycles),
            (r.kernel, r.stages, r.block_bytes, r.decode_cycles, r.multiply_cycles)
        );
    }
}

#[test]
fn persistence_round_trips_byte_for_byte_through_the_filesystem() {
    let a = sample_matrix();
    let config = tune_matrix(&a, &opts(2019, 0)).unwrap().config;
    let dir = scratch_dir("roundtrip");
    let path = dir.join("a.tuned.json");
    std::fs::write(&path, config.to_json_string()).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let parsed = TunedConfig::from_json_str(&text).unwrap();
    assert_eq!(parsed, config);
    assert_eq!(parsed.to_json_string(), text, "write -> read -> write must be byte-stable");
    parsed.validate_for(&a).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn schema_and_digest_drift_are_rejected_with_typed_errors() {
    let a = sample_matrix();
    let config = tune_matrix(&a, &opts(2019, 0)).unwrap().config;

    let wrong_schema = config.to_json_string().replace(TUNED_SCHEMA, "recode-tuned/v0");
    match TunedConfig::from_json_str(&wrong_schema) {
        Err(TuneError::SchemaMismatch { found }) => assert_eq!(found, "recode-tuned/v0"),
        other => panic!("want SchemaMismatch, got {other:?}"),
    }

    // A config tuned for one matrix must not validate against another.
    let b =
        generate(&GenSpec::Stencil2D { nx: 14, ny: 11, points: 5, values: ValueModel::Ones }, 7);
    assert!(matches!(config.validate_for(&b), Err(TuneError::DigestMismatch { .. })));

    // Malformed documents are errors, never defaults.
    for text in ["", "{}", "[1,2]", "{\"schema\": 3}", "not json at all"] {
        assert!(
            matches!(TunedConfig::from_json_str(text), Err(TuneError::Malformed(_))),
            "input {text:?} must be Malformed"
        );
    }

    // A tampered kernel or stage name is Malformed, not silently remapped.
    let bad_kernel = config.to_json_string().replace(config.kernel.name(), "gpu-magic");
    assert!(matches!(TunedConfig::from_json_str(&bad_kernel), Err(TuneError::Malformed(_))));
}

#[test]
fn winner_is_reproducible_across_repeated_searches() {
    let a = sample_matrix();
    let first = tune_matrix(&a, &opts(11, 0)).unwrap().config;
    for _ in 0..3 {
        assert_eq!(tune_matrix(&a, &opts(11, 0)).unwrap().config, first);
    }
    // The config is keyed to this matrix and usable end to end.
    let recoded = RecodedSpmv::new_tuned(&a, &first).unwrap();
    assert_eq!(recoded.compressed().config, first.codec_config());
    let tuned_overlap = OverlapExecutor::from_tuned(
        &recoded,
        &first,
        OverlapConfig { overlap: true, cache_blocks: 4, workers: 1 },
    );
    assert!(tuned_overlap.is_ok());
    // An operand recoded under a different codec is refused.
    let other = StageSubset::ALL
        .into_iter()
        .find(|s| *s != first.stages)
        .expect("more than one stage subset exists");
    let mismatched = RecodedSpmv::new(&a, other.codec_config(first.block_bytes)).unwrap();
    assert!(matches!(
        OverlapExecutor::from_tuned(
            &mismatched,
            &first,
            OverlapConfig { overlap: true, cache_blocks: 0, workers: 1 },
        ),
        Err(TuneError::CodecMismatch)
    ));
}

/// A scratch directory unique to this test binary invocation.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("recode-tune-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn recode() -> Command {
    Command::new(env!("CARGO_BIN_EXE_recode"))
}

#[test]
fn cli_tune_then_spmv_consumes_the_persisted_config() {
    let dir = scratch_dir("cli");
    let mtx = dir.join("m.mtx");
    let tuned = dir.join("m.tuned.json");

    let gen = recode()
        .args(["gen", "stencil2d", "2500", "-o"])
        .arg(&mtx)
        .output()
        .expect("spawn recode gen");
    assert!(gen.status.success(), "gen failed: {}", String::from_utf8_lossy(&gen.stderr));

    // Two tunes with different trial counts must write identical bytes.
    let mut written = Vec::new();
    for trials in ["1", "2"] {
        let out = recode()
            .args(["tune"])
            .arg(&mtx)
            .args(["-o"])
            .arg(&tuned)
            .env("RECODE_TUNE_TRIALS", trials)
            .output()
            .expect("spawn recode tune");
        assert!(out.status.success(), "tune failed: {}", String::from_utf8_lossy(&out.stderr));
        written.push(std::fs::read(&tuned).unwrap());
    }
    assert_eq!(written[0], written[1], "RECODE_TUNE_TRIALS leaked into the persisted config");

    // The persisted config drives both the batch and the overlap path.
    for extra in [&[][..], &["--overlap", "--cache-blocks", "4"][..]] {
        let out = recode()
            .args(["spmv"])
            .arg(&mtx)
            .args(["--tuned"])
            .arg(&tuned)
            .args(extra)
            .output()
            .expect("spawn recode spmv");
        assert!(
            out.status.success(),
            "spmv --tuned {extra:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("tuned: kernel"), "missing tuned banner in: {stdout}");
        assert!(stdout.contains("verified against the uncompressed kernel"), "{stdout}");
    }

    // A config tuned for a different matrix must hard-fail (exit 1).
    let other = dir.join("other.mtx");
    let gen2 = recode()
        .args(["gen", "circuit", "2500", "-o"])
        .arg(&other)
        .output()
        .expect("spawn recode gen");
    assert!(gen2.status.success());
    let out = recode()
        .args(["spmv"])
        .arg(&other)
        .args(["--tuned"])
        .arg(&tuned)
        .output()
        .expect("spawn recode spmv");
    assert_eq!(out.status.code(), Some(1), "stale config must be a hard error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("different matrix"), "unexpected stderr: {stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn garbage_tune_trials_warns_instead_of_silently_defaulting() {
    let dir = scratch_dir("cli-trials");
    let mtx = dir.join("m.mtx");
    let gen = recode()
        .args(["gen", "stencil2d", "900", "-o"])
        .arg(&mtx)
        .output()
        .expect("spawn recode gen");
    assert!(gen.status.success(), "gen failed: {}", String::from_utf8_lossy(&gen.stderr));

    let out = recode()
        .args(["tune"])
        .arg(&mtx)
        .args(["-o"])
        .arg(dir.join("m.tuned.json"))
        .env("RECODE_TUNE_TRIALS", "three")
        .output()
        .expect("spawn recode tune");
    // A garbage trial count is diagnosed (naming the variable and the
    // value), then tuning proceeds on the default — it must not abort, and
    // it must not silently pretend the variable was unset.
    assert!(out.status.success(), "tune failed: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("RECODE_TUNE_TRIALS") && stderr.contains("three"),
        "expected a warning naming the bad value, got: {stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
