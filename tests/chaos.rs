//! Seeded chaos campaign over the full job-execution stack.
//!
//! Each trial derives a plan (execution arm, fault injection point, job
//! budget) from a master seed, runs one SpMV job under a watchdog, and
//! classifies the terminal state. The campaign is healthy when every trial
//! lands in a *typed* terminal state — no hangs, no escaped panics, block
//! accounting intact, every emitted trace valid, every completed result
//! bit-exact against the reference kernel.
//!
//! Trial count defaults to 500 and can be resized for CI smoke runs via
//! `RECODE_CHAOS_TRIALS` (the same knob the `chaos-smoke` CI job uses).

use recode_spmv::prelude::{run_campaign, ChaosConfig};

fn configured_trials(default: usize) -> usize {
    match std::env::var("RECODE_CHAOS_TRIALS") {
        Ok(v) => v.trim().parse().unwrap_or_else(|_| {
            panic!("RECODE_CHAOS_TRIALS must be a positive trial count, got {v:?}")
        }),
        Err(_) => default,
    }
}

#[test]
fn chaos_campaign_terminates_typed_on_every_trial() {
    let trials = configured_trials(500);
    let cfg = ChaosConfig { trials, seed: 0xC0FFEE, ..ChaosConfig::default() };
    let summary = run_campaign(&cfg);

    assert!(summary.healthy(), "campaign violated an invariant:\n{}", summary.render());
    assert_eq!(summary.trials, trials);
    assert_eq!(summary.hung, 0, "a trial exceeded the watchdog deadline");
    assert_eq!(summary.panics_escaped, 0, "a panic crossed the executor boundary");
    assert_eq!(summary.accounting_failures, 0, "ok+recovered+fell_back must equal dispatched jobs");
    assert_eq!(summary.trace_failures, 0, "every TraceDocument must validate");
    assert_eq!(summary.bitexact_failures, 0, "recovered results must match the reference kernel");

    // Every trial is classified, and none by the two failure buckets.
    let classified: usize = summary.by_outcome.values().sum();
    assert_eq!(classified, trials, "every trial must reach a typed terminal state");
    assert_eq!(summary.outcome("hung"), 0);
    assert_eq!(summary.outcome("panic-escaped"), 0);

    // The plan space is stacked so these injection points appear at ≥10%
    // per-trial probability — they must show up even in smoke-sized runs.
    for point in ["lane-dispatch", "stream-corrupt", "pool-recycle"] {
        assert!(
            summary.by_injection.get(point).copied().unwrap_or(0) > 0,
            "campaign never exercised injection point {point:?}:\n{}",
            summary.render()
        );
    }
    // Fault-free trials must also appear: they pin the bit-exact baseline.
    assert!(summary.by_injection.get("none").copied().unwrap_or(0) > 0);

    // Lane panics and stage-boundary faults are the only plans that route a
    // deliberate panic through the executors; every one must be contained.
    assert!(summary.panics_contained > 0, "no trial exercised panic containment");

    // Rarer coverage (stage-boundary ≈3%, each corruption kind ≈7% of
    // trials) is only a sound assertion at full campaign size.
    if trials >= 400 {
        assert!(
            summary.by_injection.get("stage-boundary").copied().unwrap_or(0) > 0,
            "full campaign must hit the overlap stage boundary:\n{}",
            summary.render()
        );
        for kind in [
            "bit-flip",
            "truncate",
            "drop-block",
            "duplicate-block",
            "reorder-blocks",
            "header-corrupt",
        ] {
            assert!(
                summary.by_fault.get(kind).copied().unwrap_or(0) > 0,
                "full campaign must inject fault kind {kind:?}:\n{}",
                summary.render()
            );
        }
    }
}

#[test]
fn chaos_campaign_is_deterministic_per_seed() {
    // Two campaigns from the same seed must agree on every counter — the
    // whole point of seeding is that a red campaign replays exactly.
    let cfg = ChaosConfig { trials: 80, seed: 0x5EED_CAFE, ..ChaosConfig::default() };
    let first = run_campaign(&cfg);
    let second = run_campaign(&cfg);
    assert_eq!(first, second, "same seed must reproduce the identical campaign summary");
    assert!(first.healthy(), "{}", first.render());

    // And a different seed explores a different schedule.
    let other = run_campaign(&ChaosConfig { seed: 0x00DD_5EED, ..cfg });
    assert_ne!(
        first.by_injection, other.by_injection,
        "different seeds should draw different injection mixes"
    );
}
