//! Cross-crate integration: generators → codec → UDP simulator → SpMV,
//! exercised through the public facade exactly as an application would.

use recode_spmv::codec::pipeline::{CompressedMatrix, MatrixCodecConfig};
use recode_spmv::core::corpus::{corpus, CorpusScale};
use recode_spmv::prelude::*;
use recode_spmv::sparse::io::{read_matrix_market, write_matrix_market};
use recode_spmv::sparse::spmv::{spmv_with, SpmvKernel};

/// Every generator family survives the full compress → UDP-decode → SpMV
/// path bit-exactly.
#[test]
fn every_family_round_trips_through_the_heterogeneous_system() {
    let sys = SystemConfig::ddr4();
    // One entry per family from the deterministic corpus.
    let entries = corpus(CorpusScale::Small, 77);
    let mut seen = std::collections::HashSet::new();
    for e in &entries {
        if !seen.insert(e.family) {
            continue;
        }
        let a = e.generate();
        let recoded = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh())
            .unwrap_or_else(|err| panic!("{}: {err}", e.name));
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i % 13) as f64) - 6.0).collect();
        let (y, stats) = recoded
            .spmv(&sys, SpmvKernel::Serial, &x)
            .unwrap_or_else(|err| panic!("{}: {err}", e.name));
        assert_eq!(y, spmv(&a, &x), "{}", e.name);
        assert!(stats.accel.makespan_cycles > 0, "{}", e.name);
        if seen.len() == 11 {
            break;
        }
    }
    assert!(seen.len() >= 10, "covered families: {seen:?}");
}

/// MatrixMarket input feeds the same pipeline (real TAMU matrices drop in).
#[test]
fn matrix_market_file_flows_through_compression_and_udp_decode() {
    let a = generate(
        &GenSpec::FemBand {
            n: 300,
            band: 9,
            fill: 0.5,
            values: ValueModel::MixedRepeated { distinct: 20 },
        },
        3,
    );
    let mut mm = Vec::new();
    write_matrix_market(&a, &mut mm).unwrap();
    let b = read_matrix_market(mm.as_slice()).unwrap();
    assert_eq!(a, b);
    let recoded = RecodedSpmv::new(&b, MatrixCodecConfig::udp_dsh()).unwrap();
    let (c, _) = recoded.decompress_via_udp(&SystemConfig::ddr4()).unwrap();
    assert_eq!(c, a);
}

/// The two codec configurations and all kernels agree on the same matrix.
#[test]
fn all_kernels_and_configs_agree() {
    let a = generate(
        &GenSpec::Circuit {
            n: 900,
            avg_deg: 4.0,
            hubs: 3,
            values: ValueModel::QuantizedGaussian { levels: 64 },
        },
        5,
    );
    let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).cos()).collect();
    let want = spmv(&a, &x);
    let sys = SystemConfig::ddr4();
    for cfg in
        [MatrixCodecConfig::udp_dsh(), MatrixCodecConfig::udp_ds(), MatrixCodecConfig::cpu_snappy()]
    {
        let recoded = RecodedSpmv::new(&a, cfg).unwrap();
        let (got, _) = recoded.spmv(&sys, SpmvKernel::Serial, &x).unwrap();
        assert_eq!(got, want);
    }
    for k in SpmvKernel::ALL {
        let got = spmv_with(k, &a, &x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "{k:?}");
        }
    }
}

/// Serialized compressed matrices decode after a JSON round trip (storage
/// format stability).
#[test]
fn compressed_matrix_survives_serialization() {
    let a = generate(
        &GenSpec::Stencil3D {
            nx: 12,
            ny: 12,
            nz: 12,
            points: 7,
            values: ValueModel::StencilCoeffs,
        },
        8,
    );
    let cm = CompressedMatrix::compress(&a, MatrixCodecConfig::udp_dsh()).unwrap();
    let json = serde_json::to_vec(&cm).unwrap();
    let cm2: CompressedMatrix = serde_json::from_slice(&json).unwrap();
    let recoded = RecodedSpmv::from_compressed(cm2).unwrap();
    let (b, _) = recoded.decompress_via_udp(&SystemConfig::ddr4()).unwrap();
    assert_eq!(b, a);
}

/// RCM reordering composes with the pipeline and never breaks round trips.
#[test]
fn rcm_reordered_matrices_round_trip() {
    use recode_spmv::sparse::reorder::reverse_cuthill_mckee;
    let a =
        generate(&GenSpec::SmallWorld { n: 500, k: 3, rewire: 0.05, values: ValueModel::Ones }, 13);
    let perm = reverse_cuthill_mckee(&a);
    let b = perm.apply_symmetric(&a);
    let recoded = RecodedSpmv::new(&b, MatrixCodecConfig::udp_dsh()).unwrap();
    let (c, _) = recoded.decompress_via_udp(&SystemConfig::ddr4()).unwrap();
    assert_eq!(c, b);
}

/// HBM2 and DDR4 systems produce identical *functional* results; only the
/// modeled statistics differ.
#[test]
fn memory_system_choice_is_functionally_transparent() {
    let a = generate(
        &GenSpec::MultiDiagonal {
            n: 600,
            offsets: vec![-3, 0, 3],
            values: ValueModel::MixedRepeated { distinct: 5 },
        },
        21,
    );
    let recoded = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).unwrap();
    let x = vec![0.5; a.ncols()];
    let (y_ddr, s_ddr) = recoded.spmv(&SystemConfig::ddr4(), SpmvKernel::Serial, &x).unwrap();
    let (y_hbm, s_hbm) = recoded.spmv(&SystemConfig::hbm2(), SpmvKernel::Serial, &x).unwrap();
    assert_eq!(y_ddr, y_hbm);
    assert!(s_hbm.mem_stream_seconds < s_ddr.mem_stream_seconds, "HBM streams 10x faster");
    assert_eq!(s_ddr.accel.makespan_cycles, s_hbm.accel.makespan_cycles);
}
