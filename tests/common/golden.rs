//! Shared golden-trace machinery: the canonical default run and the
//! hand-rolled serde-identical `TraceDocument` emitter, included by both
//! `trace_golden.rs` (default pipeline fixture) and `trace_golden_tuned.rs`
//! (auto-tuned pipeline fixture) via `#[path]`. Lives under `tests/common/`
//! so Cargo does not compile it as a test crate of its own.

use recode_spmv::core::telemetry::TraceDocument;
use recode_spmv::prelude::*;
use std::fmt::Write as _;

/// The canonical matrix both golden fixtures pin: 16x16 5-point stencil,
/// seed 7.
pub fn golden_matrix() -> Csr {
    generate(
        &GenSpec::Stencil2D { nx: 16, ny: 16, points: 5, values: ValueModel::StencilCoeffs },
        7,
    )
}

/// The canonical executor settings both fixtures pin.
pub fn golden_overlap_config() -> OverlapConfig {
    OverlapConfig { overlap: true, cache_blocks: 8, workers: 1 }
}

/// Zeroes the host wall-clock fields, the only nondeterministic ones.
pub fn normalize_wall(doc: &mut TraceDocument) {
    doc.wall_ns_total = 0;
    for span in &mut doc.spans {
        span.wall_ns = 0;
    }
}

/// Runs the canonical pipelined job over `recoded` and normalizes the
/// host wall-clock fields.
pub fn traced_overlap_run(recoded: &RecodedSpmv, ncols: usize, name: &str) -> TraceDocument {
    let sys = SystemConfig::ddr4();
    let ex = OverlapExecutor::new(recoded, golden_overlap_config());
    let x = vec![1.0; ncols];
    let (_, _, mut doc) = ex.spmv_traced(&sys, &x, None, name).expect("traced run");
    normalize_wall(&mut doc);
    doc
}

/// The one canonical default run `golden_trace_v1.json` pins.
pub fn canonical_doc() -> TraceDocument {
    let a = golden_matrix();
    // No stage telemetry (RecodedSpmv::new, not new_traced): the codec
    // section stays all-zero, which keeps the fixture deterministic.
    let recoded = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).expect("compress");
    traced_overlap_run(&recoded, a.ncols(), "golden_stencil16")
}

pub fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

pub fn esc(s: &str) -> String {
    // The fixture contains no characters needing more than this.
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Compares a rendered document against a fixture with a line-precise
/// failure message, or blesses the fixture when `RECODE_BLESS_TRACE` is
/// set and `allow_bless` is true.
pub fn assert_matches_fixture(rendered: &str, fixture: &str, allow_bless: bool) {
    if allow_bless && std::env::var("RECODE_BLESS_TRACE").is_ok() {
        std::fs::write(fixture, rendered).expect("write fixture");
        eprintln!("blessed {fixture}");
        return;
    }
    let golden = std::fs::read_to_string(fixture)
        .unwrap_or_else(|e| panic!("{fixture}: {e} (run with RECODE_BLESS_TRACE=1 to create)"));
    if rendered != golden {
        for (i, (got, want)) in rendered.lines().zip(golden.lines()).enumerate() {
            assert_eq!(
                got,
                want,
                "output drifted from the golden fixture {} at line {} — if the \
                 change is intentional, re-bless with RECODE_BLESS_TRACE=1",
                fixture,
                i + 1
            );
        }
        panic!(
            "output drifted from the golden fixture {fixture}: {} lines rendered vs {} in fixture",
            rendered.lines().count(),
            golden.lines().count()
        );
    }
}

/// Serializes a [`TraceDocument`] exactly as serde would (same field names,
/// same nesting, unit enum variants as strings, u8 map keys as strings),
/// pretty-printed with 2-space indents and a trailing newline.
pub fn to_golden_json(doc: &TraceDocument) -> String {
    let mut o = String::new();
    let m = &doc.matrix;
    let s = &doc.system;
    let _ = writeln!(o, "{{");
    let _ = writeln!(o, "  \"schema\": \"{}\",", esc(&doc.schema));
    let _ = writeln!(o, "  \"matrix\": {{");
    let _ = writeln!(o, "    \"name\": \"{}\",", esc(&m.name));
    let _ = writeln!(o, "    \"nrows\": {},", m.nrows);
    let _ = writeln!(o, "    \"ncols\": {},", m.ncols);
    let _ = writeln!(o, "    \"nnz\": {},", m.nnz);
    let _ = writeln!(o, "    \"compressed_bytes\": {},", m.compressed_bytes);
    let _ = writeln!(o, "    \"bytes_per_nnz\": {}", fmt_f64(m.bytes_per_nnz));
    let _ = writeln!(o, "  }},");
    let _ = writeln!(o, "  \"system\": {{");
    let _ = writeln!(o, "    \"memory\": \"{}\",", esc(&s.memory));
    let _ = writeln!(o, "    \"lanes\": {},", s.lanes);
    let _ = writeln!(o, "    \"freq_hz\": {}", fmt_f64(s.freq_hz));
    let _ = writeln!(o, "  }},");
    let _ = writeln!(o, "  \"wall_ns_total\": {},", doc.wall_ns_total);
    let _ = writeln!(o, "  \"spans\": [");
    for (i, sp) in doc.spans.iter().enumerate() {
        let comma = if i + 1 < doc.spans.len() { "," } else { "" };
        let _ = writeln!(
            o,
            "    {{ \"name\": \"{}\", \"wall_ns\": {}, \"modeled_seconds\": {}, \"bytes\": {} }}{comma}",
            esc(&sp.name),
            sp.wall_ns,
            fmt_f64(sp.modeled_seconds),
            sp.bytes
        );
    }
    let _ = writeln!(o, "  ],");
    let _ = writeln!(o, "  \"counters\": {{");
    for (i, (k, v)) in doc.counters.iter().enumerate() {
        let comma = if i + 1 < doc.counters.len() { "," } else { "" };
        let _ = writeln!(o, "    \"{}\": {v}{comma}", esc(k));
    }
    let _ = writeln!(o, "  }},");
    let h = &doc.block_cycles;
    let _ = writeln!(o, "  \"block_cycles\": {{");
    let _ = writeln!(o, "    \"count\": {},", h.count);
    let _ = writeln!(o, "    \"sum\": {},", h.sum);
    let _ = writeln!(o, "    \"min\": {},", h.min);
    let _ = writeln!(o, "    \"max\": {},", h.max);
    let _ = writeln!(o, "    \"buckets\": {{");
    for (i, (b, c)) in h.buckets.iter().enumerate() {
        let comma = if i + 1 < h.buckets.len() { "," } else { "" };
        let _ = writeln!(o, "      \"{b}\": {c}{comma}");
    }
    let _ = writeln!(o, "    }}");
    let _ = writeln!(o, "  }},");
    let _ = writeln!(o, "  \"block_events\": [");
    for (i, e) in doc.block_events.iter().enumerate() {
        let comma = if i + 1 < doc.block_events.len() { "," } else { "" };
        let _ = writeln!(
            o,
            "    {{ \"job\": {}, \"stream\": \"{:?}\", \"block\": {}, \"lane\": {}, \"cycles\": {}, \"outcome\": \"{:?}\" }}{comma}",
            e.job, e.stream, e.block, e.lane, e.cycles, e.outcome
        );
    }
    let _ = writeln!(o, "  ],");
    let _ = writeln!(o, "  \"codec_stages\": {{");
    let cs = &doc.codec_stages;
    for (di, (dname, d)) in [("encode", &cs.encode), ("decode", &cs.decode)].iter().enumerate() {
        let _ = writeln!(o, "    \"{dname}\": {{");
        let stages = [("delta", &d.delta), ("snappy", &d.snappy), ("huffman", &d.huffman)];
        for (si, (sname, st)) in stages.iter().enumerate() {
            let comma = if si + 1 < stages.len() { "," } else { "" };
            let _ = writeln!(
                o,
                "      \"{sname}\": {{ \"calls\": {}, \"ns\": {}, \"bytes_in\": {}, \"bytes_out\": {} }}{comma}",
                st.calls, st.ns, st.bytes_in, st.bytes_out
            );
        }
        let comma = if di == 0 { "," } else { "" };
        let _ = writeln!(o, "    }}{comma}");
    }
    let _ = writeln!(o, "  }},");
    let t = &doc.mem_traffic;
    let _ = writeln!(o, "  \"mem_traffic\": {{");
    let _ = writeln!(o, "    \"memory\": \"{}\",", esc(&t.memory));
    let _ = writeln!(o, "    \"by_source\": [");
    for (i, src) in t.by_source.iter().enumerate() {
        let comma = if i + 1 < t.by_source.len() { "," } else { "" };
        let _ = writeln!(
            o,
            "      {{ \"source\": \"{:?}\", \"read_bytes\": {}, \"write_bytes\": {} }}{comma}",
            src.source, src.read_bytes, src.write_bytes
        );
    }
    let _ = writeln!(o, "    ],");
    let _ = writeln!(o, "    \"total_bytes\": {},", t.total_bytes);
    let _ = writeln!(o, "    \"stream_seconds\": {},", fmt_f64(t.stream_seconds));
    let _ = writeln!(o, "    \"transfer_joules\": {}", fmt_f64(t.transfer_joules));
    let _ = writeln!(o, "  }},");
    let e = &doc.exec;
    let a = &e.accel;
    let _ = writeln!(o, "  \"exec\": {{");
    let _ = writeln!(o, "    \"accel\": {{");
    let _ = writeln!(o, "      \"jobs\": {},", a.jobs);
    let _ = writeln!(o, "      \"jobs_failed\": {},", a.jobs_failed);
    let _ = writeln!(o, "      \"lanes\": {},", a.lanes);
    let _ = writeln!(o, "      \"makespan_cycles\": {},", a.makespan_cycles);
    let _ = writeln!(o, "      \"busy_cycles\": {},", a.busy_cycles);
    let _ = writeln!(o, "      \"injected_stall_cycles\": {},", a.injected_stall_cycles);
    let _ = writeln!(o, "      \"output_bytes\": {},", a.output_bytes);
    let _ = writeln!(o, "      \"lane_utilization\": {},", fmt_f64(a.lane_utilization));
    let _ = writeln!(o, "      \"freq_hz\": {},", fmt_f64(a.freq_hz));
    assert!(
        a.lane_profiles.is_empty(),
        "golden writer pins the overlap path, which emits no lane profiles"
    );
    let _ = writeln!(o, "      \"lane_profiles\": [],");
    let oc = &a.opclass;
    let _ = writeln!(
        o,
        "      \"opclass\": {{ \"dispatch\": {}, \"alu\": {}, \"mem\": {}, \"stream\": {} }},",
        oc.dispatch, oc.alu, oc.mem, oc.stream
    );
    let st = &a.stage_cycles;
    let _ = writeln!(
        o,
        "      \"stage_cycles\": {{ \"huffman\": {}, \"snappy\": {}, \"delta\": {} }}",
        st.huffman, st.snappy, st.delta
    );
    let _ = writeln!(o, "    }},");
    let _ = writeln!(o, "    \"mem_stream_seconds\": {},", fmt_f64(e.mem_stream_seconds));
    let _ = writeln!(o, "    \"dma_seconds\": {},", fmt_f64(e.dma_seconds));
    let _ = writeln!(o, "    \"compressed_bytes\": {},", e.compressed_bytes);
    let _ = writeln!(o, "    \"blocks_retried\": {},", e.blocks_retried);
    let _ = writeln!(o, "    \"blocks_fell_back\": {},", e.blocks_fell_back);
    let _ = writeln!(o, "    \"fallback_bytes\": {},", e.fallback_bytes);
    let _ = writeln!(o, "    \"retry_cycles\": {},", e.retry_cycles);
    let _ = writeln!(o, "    \"degraded\": {},", e.degraded);
    let ov = &e.overlap;
    let _ = writeln!(o, "    \"overlap\": {{");
    let _ = writeln!(o, "      \"enabled\": {},", ov.enabled);
    let _ = writeln!(o, "      \"stages\": {},", ov.stages);
    let _ = writeln!(o, "      \"workers\": {},", ov.workers);
    let _ = writeln!(o, "      \"decode_cycles\": {},", ov.decode_cycles);
    let _ = writeln!(o, "      \"multiply_cycles\": {},", ov.multiply_cycles);
    let _ = writeln!(o, "      \"overlapped_makespan_cycles\": {},", ov.overlapped_makespan_cycles);
    let _ = writeln!(o, "      \"serial_makespan_cycles\": {},", ov.serial_makespan_cycles);
    let _ = writeln!(o, "      \"cache_hits\": {},", ov.cache_hits);
    let _ = writeln!(o, "      \"cache_misses\": {},", ov.cache_misses);
    let _ = writeln!(o, "      \"cache_evictions\": {},", ov.cache_evictions);
    let _ = writeln!(o, "      \"cache_hit_bytes\": {}", ov.cache_hit_bytes);
    let _ = writeln!(o, "    }}");
    let _ = writeln!(o, "  }}");
    let _ = writeln!(o, "}}");
    o
}
