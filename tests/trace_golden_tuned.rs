//! Golden fixtures for the auto-tuned pipeline (ISSUE 8).
//!
//! Two artifacts are pinned for the canonical 16x16 5-point stencil
//! (seed 7, the same matrix `trace_golden.rs` uses):
//!
//! 1. `tests/fixtures/tuned_golden_stencil16.json` — the persisted
//!    `TunedConfig` the deterministic tuner selects for it. Any change to
//!    the search space, the cost model, or the JSON layout moves these
//!    bytes and must be re-blessed consciously.
//! 2. `tests/fixtures/golden_trace_tuned_v1.json` — the `recode-trace/v1`
//!    document for the pipelined run driven by that config (built through
//!    `RecodedSpmv::new_tuned` + `OverlapExecutor::from_tuned`, cache 8,
//!    one worker), wall-clock normalized exactly like the default fixture.
//!
//! The suite also re-renders the DEFAULT canonical run with no bless
//! branch: adding the tuned path must leave `golden_trace_v1.json`
//! byte-for-byte untouched, even under `RECODE_BLESS_TRACE=1`.
//!
//! To regenerate the two tuned fixtures after an intentional change:
//! `RECODE_BLESS_TRACE=1 cargo test --test trace_golden_tuned`.

#[path = "common/golden.rs"]
mod golden;

use golden::{
    assert_matches_fixture, canonical_doc, golden_matrix, normalize_wall, to_golden_json,
};
use recode_spmv::core::telemetry::TraceDocument;
use recode_spmv::prelude::*;

const DEFAULT_FIXTURE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_trace_v1.json");
const TUNED_CONFIG_FIXTURE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/tuned_golden_stencil16.json");
const TUNED_TRACE_FIXTURE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_trace_tuned_v1.json");

/// The one canonical tuned config: golden matrix, seed 7. Trials are zero
/// so the search never touches the wall clock — the persisted bytes are
/// invariant to trial resizing anyway (see `tests/tune.rs`).
fn canonical_tuned_config() -> TunedConfig {
    let a = golden_matrix();
    let opts = TuneOptions { seed: 7, trials: 0, sys: SystemConfig::ddr4() };
    tune_matrix(&a, &opts).expect("tune canonical matrix").config
}

/// The canonical tuned run: the golden matrix recoded under the tuned
/// codec, executed through the tuned-aware constructors.
fn canonical_tuned_doc(tuned: &TunedConfig) -> TraceDocument {
    let a = golden_matrix();
    let sys = SystemConfig::ddr4();
    let recoded = RecodedSpmv::new_tuned(&a, tuned).expect("recode under tuned config");
    let ex = OverlapExecutor::from_tuned(&recoded, tuned, golden::golden_overlap_config())
        .expect("tuned executor");
    let x = vec![1.0; a.ncols()];
    let (_, _, mut doc) =
        ex.spmv_traced(&sys, &x, None, "golden_stencil16_tuned").expect("traced run");
    normalize_wall(&mut doc);
    doc
}

#[test]
fn tuned_config_matches_the_golden_fixture() {
    let tuned = canonical_tuned_config();
    assert_matches_fixture(&tuned.to_json_string(), TUNED_CONFIG_FIXTURE, true);
}

#[test]
fn tuned_trace_matches_the_canonical_tuned_run() {
    let tuned = canonical_tuned_config();
    let doc = canonical_tuned_doc(&tuned);
    let errs = doc.validate();
    assert!(errs.is_empty(), "canonical tuned run fails its own invariants: {errs:?}");
    assert_matches_fixture(&to_golden_json(&doc), TUNED_TRACE_FIXTURE, true);
}

#[test]
fn tuned_fixture_pins_the_headline_fields() {
    let tuned = canonical_tuned_config();
    tuned.validate_for(&golden_matrix()).expect("fixture config keyed to the golden matrix");
    let doc = canonical_tuned_doc(&tuned);
    assert_eq!(doc.schema, "recode-trace/v1");
    assert_eq!(doc.matrix.name, "golden_stencil16_tuned");
    assert_eq!((doc.matrix.nrows, doc.matrix.ncols), (256, 256));
    assert!(doc.exec.overlap.enabled);
    assert_eq!(doc.exec.overlap.workers, 1);
    // The tuned codec drives the run: the trace's headline wire metric
    // must equal the one the tuner persisted, and the fetched payload can
    // never exceed the full wire size (payload + headers + tables).
    let recoded = RecodedSpmv::new_tuned(&golden_matrix(), &tuned).unwrap();
    assert_eq!(doc.matrix.bytes_per_nnz, tuned.wire_bytes_per_nnz);
    assert!(doc.matrix.compressed_bytes <= recoded.compressed().wire_bytes());
    assert!(doc.matrix.compressed_bytes > 0);
}

/// The guard the satellite asks for: growing a second golden fixture must
/// not move the first. This re-renders the DEFAULT canonical run and
/// compares it byte-for-byte with no bless branch, so even a
/// `RECODE_BLESS_TRACE=1` run of this binary cannot paper over drift in
/// `golden_trace_v1.json`.
#[test]
fn default_golden_fixture_is_untouched_by_the_tuned_path() {
    let golden_bytes = std::fs::read_to_string(DEFAULT_FIXTURE)
        .expect("default fixture must exist before the tuned suite runs");
    let rendered = to_golden_json(&canonical_doc());
    assert_eq!(
        rendered, golden_bytes,
        "default golden trace moved while adding the tuned fixture — that drift must be \
         reviewed in trace_golden.rs, never silently re-blessed here"
    );
}
