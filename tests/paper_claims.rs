//! Shape-level assertions of the paper's headline claims, evaluated on the
//! small deterministic corpus. These are the repository's "does the
//! reproduction reproduce?" gates: who wins, by roughly what factor.

use recode_spmv::core::corpus::{corpus, CorpusScale};
use recode_spmv::core::experiment::{
    compression_geomeans, compression_study, decomp_study, materialize, power_study, spmv_study,
};
use recode_spmv::prelude::*;
use recode_spmv::sparse::util::geometric_mean;

fn entries(n: usize) -> Vec<recode_spmv::core::corpus::CorpusEntry> {
    corpus(CorpusScale::Small, 2019).into_iter().take(n).collect()
}

/// Claim (Fig. 10): recoding cuts storage from 12 B/nnz to ~5, and the
/// UDP's DSH beats CPU Snappy despite its smaller 8 KB blocks.
#[test]
fn compression_lands_in_the_papers_band() {
    let rows = compression_study(&entries(33));
    let g = compression_geomeans(&rows).unwrap();
    assert!(g.dsh > 2.0 && g.dsh < 7.5, "DSH geomean {:.2} (paper 5.00)", g.dsh);
    assert!(
        g.cpu_snappy > 3.0 && g.cpu_snappy < 9.0,
        "CPU snappy geomean {:.2} (paper 5.20)",
        g.cpu_snappy
    );
    assert!(g.dsh < g.cpu_snappy, "DSH must beat the CPU baseline");
    assert!(g.dsh < g.ds, "Huffman must help on top of Delta+Snappy");
}

/// Claim (§V-A): no strong correlation between matrix size and
/// compressibility (Fig. 11's scatter is flat).
#[test]
fn compression_is_not_size_correlated() {
    let rows = compression_study(&entries(44));
    let xs: Vec<f64> = rows.iter().map(|r| (r.nnz as f64).ln()).collect();
    let ys: Vec<f64> = rows.iter().map(|r| r.dsh_bpnnz.ln()).collect();
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let corr = sxy / (sxx * syy).sqrt();
    assert!(corr.abs() < 0.5, "size-compressibility correlation {corr:.2} too strong");
}

/// Claim (Fig. 12): the 64-lane UDP out-decompresses a 32-thread CPU by a
/// multiple, at tens of GB/s.
#[test]
fn udp_decompression_beats_cpu_by_a_multiple() {
    let sys = SystemConfig::ddr4();
    let mats = materialize(&entries(10));
    let rows = decomp_study(&sys, &mats, 8);
    let g = geometric_mean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>()).unwrap();
    assert!(g > 2.0, "UDP/CPU decomp speedup geomean {g:.2} (paper ~7x)");
    assert!(rows.iter().all(|r| r.udp_bps > 5e9), "UDP should deliver >5 GB/s on every matrix");
}

/// Claim (§V-A): single-lane block latency is tens of microseconds
/// (paper geomean 21.7 µs for 8 KB).
#[test]
fn single_lane_block_latency_is_tens_of_microseconds() {
    let sys = SystemConfig::ddr4();
    let mats = materialize(&entries(10));
    let rows = decomp_study(&sys, &mats, 8);
    let g = geometric_mean(&rows.iter().map(|r| r.us_per_block).collect::<Vec<_>>()).unwrap();
    assert!(g > 5.0 && g < 60.0, "geomean {g:.1} us/block (paper 21.7)");
}

/// Claim (Figs. 14/15): heterogeneous SpMV ≈ 2-4x over uncompressed CPU,
/// and CPU software decompression is catastrophically (>10x) worse.
#[test]
fn hetero_spmv_speedup_matches_paper_shape() {
    let sys = SystemConfig::ddr4();
    let mats = materialize(&entries(10));
    let rows = spmv_study(&sys, &mats, 8);
    let g = geometric_mean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>()).unwrap();
    assert!(g > 1.5 && g < 8.0, "hetero speedup geomean {g:.2} (paper 2.4x)");
    for r in &rows {
        assert!(
            r.hetero_gflops / r.cpu_decomp_gflops > 10.0,
            "{}: hetero/cpu-decomp only {:.1}x",
            r.name,
            r.hetero_gflops / r.cpu_decomp_gflops
        );
    }
    // The speedup is bandwidth-independent: HBM2 shows the same ratios.
    let rows_hbm = spmv_study(&SystemConfig::hbm2(), &mats, 8);
    let g_hbm = geometric_mean(&rows_hbm.iter().map(|r| r.speedup).collect::<Vec<_>>()).unwrap();
    assert!((g - g_hbm).abs() / g < 0.25, "DDR {g:.2} vs HBM {g_hbm:.2}");
}

/// Claim (Figs. 16/17): at iso-performance the recoded system saves a large
/// fraction of memory power on both DDR4 and HBM2, with DDR4 saving a
/// larger absolute share per the paper's 51 W / 33 W averages.
#[test]
fn power_savings_match_paper_shape() {
    let ddr = power_study(&SystemConfig::ddr4(), 0.02, 2019, 6);
    let hbm = power_study(&SystemConfig::hbm2(), 0.02, 2019, 6);
    assert_eq!(ddr.len(), 7);
    let avg = |rows: &[recode_spmv::core::experiment::PowerRow]| {
        rows.iter().map(|r| r.savings.net_saving_w).sum::<f64>() / rows.len() as f64
    };
    let (a_ddr, a_hbm) = (avg(&ddr), avg(&hbm));
    assert!(a_ddr > 20.0, "DDR average net saving {a_ddr:.1} W (paper 51 W)");
    assert!(a_hbm > 10.0, "HBM average net saving {a_hbm:.1} W (paper 33 W)");
    // Fractionally, DDR saves more: its per-bit energy dwarfs UDP power.
    let f_ddr = a_ddr / 80.0;
    let f_hbm = a_hbm / 64.0;
    assert!(f_ddr > f_hbm, "DDR fraction {f_ddr:.2} vs HBM {f_hbm:.2}");
    // Per-matrix spread covers a wide band, like the paper's 30-84%.
    let fractions: Vec<f64> = ddr.iter().map(|r| r.savings.net_fraction()).collect();
    let min = fractions.iter().copied().fold(f64::INFINITY, f64::min);
    let max = fractions.iter().copied().fold(0.0f64, f64::max);
    assert!(max - min > 0.2, "spread {min:.2}..{max:.2} too narrow");
}

/// Claim (Fig. 1 / §III-C): the accelerator is tiny — its power is watts
/// against tens of watts of memory power.
#[test]
fn udp_power_is_a_small_correction() {
    let rows = power_study(&SystemConfig::ddr4(), 0.02, 2019, 6);
    for r in &rows {
        assert!(
            r.savings.udp_power_w < 0.1 * r.savings.max_power_w,
            "{}: UDP power {:.2} W not small vs {:.0} W",
            r.name,
            r.savings.udp_power_w,
            r.savings.max_power_w
        );
    }
}

/// The corpus itself is part of the reproducibility story: 369 entries,
/// deterministic, spanning all families — and, like the paper's sample
/// (§IV-B: sparsity 9.4e-7% to 19%, banded/diagonal/symmetric/unstructured),
/// spanning orders of magnitude in density and both symmetry classes.
#[test]
fn corpus_matches_paper_census() {
    let c = corpus(CorpusScale::Small, 2019);
    assert_eq!(c.len(), 369);
    let families: std::collections::HashSet<&str> = c.iter().map(|e| e.family).collect();
    assert!(families.len() >= 10);

    // Census over a deterministic sample.
    let stats: Vec<recode_spmv::sparse::stats::MatrixStats> = c
        .iter()
        .step_by(16)
        .map(|e| recode_spmv::sparse::stats::MatrixStats::compute(&e.generate()))
        .collect();
    let min_density = stats.iter().map(|s| s.density).fold(f64::INFINITY, f64::min);
    let max_density = stats.iter().map(|s| s.density).fold(0.0f64, f64::max);
    assert!(
        max_density / min_density > 100.0,
        "density must span orders of magnitude: {min_density:.2e}..{max_density:.2e}"
    );
    let symmetric = stats.iter().filter(|s| s.structurally_symmetric).count();
    assert!(
        symmetric > 0 && symmetric < stats.len(),
        "both symmetric and unsymmetric matrices must appear ({symmetric}/{})",
        stats.len()
    );
    let banded = stats.iter().filter(|s| s.bandwidth < s.ncols / 10).count();
    assert!(
        banded > 0 && banded < stats.len(),
        "both banded and unstructured matrices must appear ({banded}/{})",
        stats.len()
    );
}
