//! End-to-end tests of the ISSUE 7 observability surface, driven through the
//! `recode` CLI the way a user would:
//!
//! * `--chrome-trace` produces a Chrome trace-event / Perfetto JSON file
//!   whose events are monotonic in time, whose `B`/`E` span markers balance
//!   per track, and which names one track per lane / worker / stage;
//! * `recode metrics` emits the trace as Prometheus exposition text;
//! * `recode bench-compare` passes identical snapshots and fails a synthetic
//!   25% cycle regression with a nonzero exit code.
//!
//! The chrome trace is written by the dependency-free `json` writer, so
//! these tests run (and validate) on the offline stub build too.

use std::path::{Path, PathBuf};
use std::process::Command;

use recode_spmv::core::json::{self, Json};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_recode"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("recode-obs-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

fn gen_matrix(dir: &Path, family: &str, nnz: &str, seed: &str) -> PathBuf {
    let mtx = dir.join("m.mtx");
    let out = bin()
        .args(["gen", family, nnz, "-o", mtx.to_str().unwrap(), "--seed", seed])
        .output()
        .expect("run gen");
    assert!(out.status.success(), "gen: {}", String::from_utf8_lossy(&out.stderr));
    mtx
}

/// Parses a chrome trace file and returns its `traceEvents` array.
fn load_trace_events(path: &Path) -> Vec<Json> {
    let text = std::fs::read_to_string(path).expect("read chrome trace");
    let doc = json::parse(&text).expect("chrome trace parses");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns"),
        "trace declares its display unit"
    );
    doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents array present").to_vec()
}

/// Structural validation shared by every `--chrome-trace` output: monotonic
/// timestamps, balanced `B`/`E` per track, and a `thread_name` metadata row
/// for every referenced track.
fn validate_trace(events: &[Json]) -> Vec<String> {
    assert!(!events.is_empty(), "a run must record events");

    // Metadata rows: one thread_name per tid, collect the labels.
    let mut names: Vec<(u64, String)> = Vec::new();
    for e in events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("M")) {
        assert_eq!(e.get("name").and_then(Json::as_str), Some("thread_name"));
        let tid = e.get("tid").and_then(Json::as_u64).expect("metadata carries tid");
        let label = e
            .get("args")
            .and_then(|a| a.get("name"))
            .and_then(Json::as_str)
            .expect("thread_name carries a label")
            .to_string();
        assert!(!names.iter().any(|(t, _)| *t == tid), "duplicate thread_name for tid {tid}");
        names.push((tid, label));
    }

    // Real events: timestamps never go backwards, and every tid is named.
    let mut last_ts = f64::MIN;
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> =
        std::collections::BTreeMap::new();
    let mut spans = 0usize;
    for e in events.iter().filter(|e| e.get("ph").and_then(Json::as_str) != Some("M")) {
        let ph = e.get("ph").and_then(Json::as_str).expect("event has ph");
        let tid = e.get("tid").and_then(Json::as_u64).expect("event has tid");
        let ts = e.get("ts").and_then(Json::as_f64).expect("event has ts");
        let name = e.get("name").and_then(Json::as_str).expect("event has name").to_string();
        assert!(ts >= last_ts, "timestamps must be monotonic: {ts} after {last_ts}");
        last_ts = ts;
        assert!(names.iter().any(|(t, _)| *t == tid), "event on unnamed track {tid}");
        match ph {
            "B" => {
                spans += 1;
                stacks.entry(tid).or_default().push(name);
            }
            "E" => {
                let open = stacks.get_mut(&tid).and_then(Vec::pop);
                assert_eq!(open.as_deref(), Some(name.as_str()), "E must close the matching B");
            }
            "i" => {
                assert!(e.get("args").and_then(|a| a.get("a")).is_some(), "instant carries args");
            }
            other => panic!("unexpected phase `{other}`"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "track {tid} has unbalanced spans: {stack:?}");
    }
    assert!(spans > 0, "a run must contain at least one span");
    names.into_iter().map(|(_, label)| label).collect()
}

#[test]
fn chrome_trace_from_the_batch_path_has_main_and_lane_tracks() {
    let dir = tmpdir("batch");
    let mtx = gen_matrix(&dir, "stencil2d", "40000", "3");
    let trace = dir.join("out.trace.json");

    let out = bin()
        .args(["spmv", mtx.to_str().unwrap(), "--chrome-trace", trace.to_str().unwrap()])
        .output()
        .expect("run spmv --chrome-trace");
    assert!(out.status.success(), "spmv: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("chrome trace written to"), "{text}");

    let labels = validate_trace(&load_trace_events(&trace));
    assert!(labels.iter().any(|l| l == "main"), "batch run names the main track: {labels:?}");
    assert!(
        labels.iter().any(|l| l.starts_with("lane ")),
        "batch run names one track per lane: {labels:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chrome_trace_from_the_overlap_path_has_worker_and_stage_tracks() {
    let dir = tmpdir("overlap");
    let mtx = gen_matrix(&dir, "femband", "40000", "9");
    let trace = dir.join("overlap.trace.json");

    let out = bin()
        .args([
            "spmv",
            mtx.to_str().unwrap(),
            "--overlap",
            "--chrome-trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("run spmv --overlap --chrome-trace");
    assert!(out.status.success(), "spmv --overlap: {}", String::from_utf8_lossy(&out.stderr));

    let labels = validate_trace(&load_trace_events(&trace));
    assert!(
        labels.iter().any(|l| l.starts_with("worker ")),
        "overlap run names its worker tracks: {labels:?}"
    );
    assert!(
        labels.iter().any(|l| l == "stage 0 (decode)"),
        "overlap run names the decode stage track: {labels:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_campaign_can_record_a_chrome_trace() {
    let dir = tmpdir("chaos");
    let trace = dir.join("chaos.trace.json");
    let out = bin()
        .args([
            "chaos",
            "--trials",
            "10",
            "--seed",
            "11",
            "--chrome-trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("run chaos --chrome-trace");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let labels = validate_trace(&load_trace_events(&trace));
    assert!(labels.iter().any(|l| l == "main"), "{labels:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_subcommand_emits_prometheus_exposition_text() {
    let dir = tmpdir("metrics");
    let mtx = gen_matrix(&dir, "stencil2d", "30000", "5");

    let out = bin().args(["metrics", mtx.to_str().unwrap()]).output().expect("run metrics");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "# TYPE recode_exec_jobs counter",
        "# TYPE recode_pool_checkouts counter",
        "# TYPE recode_breaker_state counter",
        "# TYPE recode_trace_wall_ns_total gauge",
        "# TYPE recode_matrix_nnz gauge",
        "recode_span_wall_ns{span=\"exec.decode_batch\"}",
    ] {
        assert!(text.contains(needle), "metrics output missing `{needle}`:\n{text}");
    }

    // `-o` writes the same exposition to a file.
    let prom = dir.join("m.prom");
    let out = bin()
        .args(["metrics", mtx.to_str().unwrap(), "-o", prom.to_str().unwrap()])
        .output()
        .expect("run metrics -o");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let file = std::fs::read_to_string(&prom).expect("metrics file");
    assert!(file.contains("# TYPE recode_exec_jobs counter"), "{file}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_compare_passes_identical_snapshots_and_fails_a_25pct_regression() {
    let baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/benchcmp/baseline.json");
    let regressed =
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/benchcmp/regressed_25pct.json");

    // Identical snapshots: clean pass.
    let out =
        bin().args(["bench-compare", baseline, baseline]).output().expect("run bench-compare");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 regression(s)"), "{text}");

    // A 25% makespan_cycles regression (beyond the 20% gate and the noise
    // floor) must fail with a nonzero exit; the 75% wall-clock swing in the
    // same snapshot is informational and must not be what trips it.
    let out = bin()
        .args(["bench-compare", baseline, regressed])
        .output()
        .expect("run bench-compare regressed");
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FAIL"), "{text}");
    assert!(text.contains("makespan_cycles"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("regressed"), "{err}");

    // Order flipped: the same delta is an improvement and passes.
    let out = bin()
        .args(["bench-compare", regressed, baseline])
        .output()
        .expect("run bench-compare improved");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
}
