//! Golden-trace schema pinning.
//!
//! `tests/fixtures/golden_trace_v1.json` is the canonical `recode-trace/v1`
//! document for one fixed pipelined run (16x16 5-point stencil, seed 7,
//! one worker, cache capacity 8). The trace schema is a public artifact —
//! `recode report` / `recode trace-check` consume it — so any field
//! rename, reorder, or value drift must be a conscious decision, not an
//! accident. This suite regenerates the canonical run and compares it to
//! the fixture field by field.
//!
//! Everything deterministic is pinned: cycle counts (the lane simulator is
//! cycle-exact), modeled seconds, traffic bytes, counters, block events.
//! Host wall-clock fields (`wall_ns_total`, span `wall_ns`) are normalized
//! to zero in both the fixture and the regenerated document.
//!
//! The serializer (shared with `trace_golden_tuned.rs` via
//! `tests/common/golden.rs`) is a ~100-line hand-rolled JSON emitter
//! mirroring serde's layout, so the suite needs no JSON dependency and
//! runs in offline builds too. To regenerate the fixture after an
//! intentional schema change:
//! `RECODE_BLESS_TRACE=1 cargo test --test trace_golden`.

#[path = "common/golden.rs"]
mod golden;

use golden::{assert_matches_fixture, canonical_doc, to_golden_json};
use recode_spmv::core::telemetry::TraceDocument;

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_trace_v1.json");

#[test]
fn golden_trace_matches_the_canonical_run() {
    let doc = canonical_doc();
    let errs = doc.validate();
    assert!(errs.is_empty(), "canonical run fails its own invariants: {errs:?}");
    assert_matches_fixture(&to_golden_json(&doc), FIXTURE, true);
}

#[test]
fn golden_fixture_pins_the_headline_fields() {
    let doc = canonical_doc();
    // Field-level pins, independent of the byte-level comparison: the
    // contract downstream consumers (report/trace-check, dashboards) lean
    // on hardest.
    assert_eq!(doc.schema, "recode-trace/v1");
    assert_eq!(doc.matrix.name, "golden_stencil16");
    assert_eq!((doc.matrix.nrows, doc.matrix.ncols), (256, 256));
    assert!(doc.matrix.nnz > 0);
    assert_eq!(doc.system.lanes, 64);
    let span_names: Vec<&str> = doc.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(span_names, ["exec.overlap", "exec.mem_stream", "exec.dma"]);
    for key in [
        "exec.jobs",
        "pipeline.overlap.stages",
        "pipeline.overlap.decode_cycles",
        "pipeline.overlap.multiply_cycles",
        "pipeline.overlap.makespan_cycles",
        "pipeline.overlap.serial_cycles",
        "pipeline.overlap.saved_cycles",
        "cache.hits",
        "cache.misses",
        "mem.read.compressed_stream",
    ] {
        assert!(doc.counters.contains_key(key), "counter `{key}` missing from the trace");
    }
    assert!(doc.exec.overlap.enabled);
    assert_eq!(doc.exec.overlap.workers, 1);
    assert_eq!(
        doc.block_events.len() as u64,
        doc.counter("exec.jobs"),
        "one block event per decode job"
    );
}

/// The flight recorder must observe, never perturb (ISSUE 7): with the
/// recorder ON the canonical run renders byte-for-byte identical to the
/// fixture — no re-blessing — and the document stays `recode-trace/v1`
/// (the overlap path emits no resilience counters, so nothing promotes
/// the schema).
#[test]
fn golden_trace_is_unchanged_with_the_recorder_enabled() {
    use recode_spmv::core::recorder;
    // Bless first if the fixture does not exist yet; the byte test owns
    // that flow.
    let Ok(golden) = std::fs::read_to_string(FIXTURE) else { return };
    recorder::enable(recorder::DEFAULT_CAPACITY);
    let doc = canonical_doc();
    let events = recorder::drain();
    recorder::disable();
    assert!(!events.is_empty(), "recorder must capture the canonical run");
    assert_eq!(doc.schema, "recode-trace/v1");
    let rendered = to_golden_json(&doc);
    assert_eq!(rendered, golden, "recorder-on run must not move a byte of the golden trace");
}

/// When a real JSON layer is present (CI builds; the offline stub panics),
/// the fixture must parse back into a `TraceDocument` through serde and
/// still validate — proving the hand-rolled emitter writes exactly the
/// schema serde reads.
#[test]
fn golden_fixture_parses_through_serde_where_available() {
    // When bless has not been run yet, the byte test reports it.
    let Ok(golden) = std::fs::read_to_string(FIXTURE) else { return };
    let parsed = std::panic::catch_unwind(|| {
        serde_json::from_str::<TraceDocument>(&golden).map_err(|e| e.to_string())
    });
    let Ok(result) = parsed else {
        eprintln!("serde_json unavailable (stubbed build) — skipping");
        return;
    };
    let doc = result.expect("golden fixture must parse as a TraceDocument");
    let errs = doc.validate();
    assert!(errs.is_empty(), "parsed fixture fails validation: {errs:?}");
    let live = canonical_doc();
    assert_eq!(doc.schema, live.schema);
    assert_eq!(doc.matrix, live.matrix);
    assert_eq!(doc.counters, live.counters);
    assert_eq!(doc.block_events, live.block_events);
    assert_eq!(doc.block_cycles, live.block_cycles);
}
