//! Golden-trace schema pinning.
//!
//! `tests/fixtures/golden_trace_v1.json` is the canonical `recode-trace/v1`
//! document for one fixed pipelined run (16x16 5-point stencil, seed 7,
//! one worker, cache capacity 8). The trace schema is a public artifact —
//! `recode report` / `recode trace-check` consume it — so any field
//! rename, reorder, or value drift must be a conscious decision, not an
//! accident. This suite regenerates the canonical run and compares it to
//! the fixture field by field.
//!
//! Everything deterministic is pinned: cycle counts (the lane simulator is
//! cycle-exact), modeled seconds, traffic bytes, counters, block events.
//! Host wall-clock fields (`wall_ns_total`, span `wall_ns`) are normalized
//! to zero in both the fixture and the regenerated document.
//!
//! The serializer here is a ~100-line hand-rolled JSON emitter mirroring
//! serde's layout, so the suite needs no JSON dependency and runs in
//! offline builds too. To regenerate the fixture after an intentional
//! schema change: `RECODE_BLESS_TRACE=1 cargo test --test trace_golden`.

use recode_spmv::core::telemetry::TraceDocument;
use recode_spmv::prelude::*;
use std::fmt::Write as _;

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_trace_v1.json");

/// The one canonical run the fixture pins.
fn canonical_doc() -> TraceDocument {
    let a = generate(
        &GenSpec::Stencil2D { nx: 16, ny: 16, points: 5, values: ValueModel::StencilCoeffs },
        7,
    );
    let sys = SystemConfig::ddr4();
    // No stage telemetry (RecodedSpmv::new, not new_traced): the codec
    // section stays all-zero, which keeps the fixture deterministic.
    let recoded = RecodedSpmv::new(&a, MatrixCodecConfig::udp_dsh()).expect("compress");
    let ex = OverlapExecutor::new(
        &recoded,
        OverlapConfig { overlap: true, cache_blocks: 8, workers: 1 },
    );
    let x = vec![1.0; a.ncols()];
    let (_, _, mut doc) = ex.spmv_traced(&sys, &x, None, "golden_stencil16").expect("traced run");
    // Normalize host wall-clock time, the only nondeterministic fields.
    doc.wall_ns_total = 0;
    for span in &mut doc.spans {
        span.wall_ns = 0;
    }
    doc
}

fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

fn esc(s: &str) -> String {
    // The fixture contains no characters needing more than this.
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes a [`TraceDocument`] exactly as serde would (same field names,
/// same nesting, unit enum variants as strings, u8 map keys as strings),
/// pretty-printed with 2-space indents and a trailing newline.
fn to_golden_json(doc: &TraceDocument) -> String {
    let mut o = String::new();
    let m = &doc.matrix;
    let s = &doc.system;
    let _ = writeln!(o, "{{");
    let _ = writeln!(o, "  \"schema\": \"{}\",", esc(&doc.schema));
    let _ = writeln!(o, "  \"matrix\": {{");
    let _ = writeln!(o, "    \"name\": \"{}\",", esc(&m.name));
    let _ = writeln!(o, "    \"nrows\": {},", m.nrows);
    let _ = writeln!(o, "    \"ncols\": {},", m.ncols);
    let _ = writeln!(o, "    \"nnz\": {},", m.nnz);
    let _ = writeln!(o, "    \"compressed_bytes\": {},", m.compressed_bytes);
    let _ = writeln!(o, "    \"bytes_per_nnz\": {}", fmt_f64(m.bytes_per_nnz));
    let _ = writeln!(o, "  }},");
    let _ = writeln!(o, "  \"system\": {{");
    let _ = writeln!(o, "    \"memory\": \"{}\",", esc(&s.memory));
    let _ = writeln!(o, "    \"lanes\": {},", s.lanes);
    let _ = writeln!(o, "    \"freq_hz\": {}", fmt_f64(s.freq_hz));
    let _ = writeln!(o, "  }},");
    let _ = writeln!(o, "  \"wall_ns_total\": {},", doc.wall_ns_total);
    let _ = writeln!(o, "  \"spans\": [");
    for (i, sp) in doc.spans.iter().enumerate() {
        let comma = if i + 1 < doc.spans.len() { "," } else { "" };
        let _ = writeln!(
            o,
            "    {{ \"name\": \"{}\", \"wall_ns\": {}, \"modeled_seconds\": {}, \"bytes\": {} }}{comma}",
            esc(&sp.name),
            sp.wall_ns,
            fmt_f64(sp.modeled_seconds),
            sp.bytes
        );
    }
    let _ = writeln!(o, "  ],");
    let _ = writeln!(o, "  \"counters\": {{");
    for (i, (k, v)) in doc.counters.iter().enumerate() {
        let comma = if i + 1 < doc.counters.len() { "," } else { "" };
        let _ = writeln!(o, "    \"{}\": {v}{comma}", esc(k));
    }
    let _ = writeln!(o, "  }},");
    let h = &doc.block_cycles;
    let _ = writeln!(o, "  \"block_cycles\": {{");
    let _ = writeln!(o, "    \"count\": {},", h.count);
    let _ = writeln!(o, "    \"sum\": {},", h.sum);
    let _ = writeln!(o, "    \"min\": {},", h.min);
    let _ = writeln!(o, "    \"max\": {},", h.max);
    let _ = writeln!(o, "    \"buckets\": {{");
    for (i, (b, c)) in h.buckets.iter().enumerate() {
        let comma = if i + 1 < h.buckets.len() { "," } else { "" };
        let _ = writeln!(o, "      \"{b}\": {c}{comma}");
    }
    let _ = writeln!(o, "    }}");
    let _ = writeln!(o, "  }},");
    let _ = writeln!(o, "  \"block_events\": [");
    for (i, e) in doc.block_events.iter().enumerate() {
        let comma = if i + 1 < doc.block_events.len() { "," } else { "" };
        let _ = writeln!(
            o,
            "    {{ \"job\": {}, \"stream\": \"{:?}\", \"block\": {}, \"lane\": {}, \"cycles\": {}, \"outcome\": \"{:?}\" }}{comma}",
            e.job, e.stream, e.block, e.lane, e.cycles, e.outcome
        );
    }
    let _ = writeln!(o, "  ],");
    let _ = writeln!(o, "  \"codec_stages\": {{");
    let cs = &doc.codec_stages;
    for (di, (dname, d)) in [("encode", &cs.encode), ("decode", &cs.decode)].iter().enumerate() {
        let _ = writeln!(o, "    \"{dname}\": {{");
        let stages = [("delta", &d.delta), ("snappy", &d.snappy), ("huffman", &d.huffman)];
        for (si, (sname, st)) in stages.iter().enumerate() {
            let comma = if si + 1 < stages.len() { "," } else { "" };
            let _ = writeln!(
                o,
                "      \"{sname}\": {{ \"calls\": {}, \"ns\": {}, \"bytes_in\": {}, \"bytes_out\": {} }}{comma}",
                st.calls, st.ns, st.bytes_in, st.bytes_out
            );
        }
        let comma = if di == 0 { "," } else { "" };
        let _ = writeln!(o, "    }}{comma}");
    }
    let _ = writeln!(o, "  }},");
    let t = &doc.mem_traffic;
    let _ = writeln!(o, "  \"mem_traffic\": {{");
    let _ = writeln!(o, "    \"memory\": \"{}\",", esc(&t.memory));
    let _ = writeln!(o, "    \"by_source\": [");
    for (i, src) in t.by_source.iter().enumerate() {
        let comma = if i + 1 < t.by_source.len() { "," } else { "" };
        let _ = writeln!(
            o,
            "      {{ \"source\": \"{:?}\", \"read_bytes\": {}, \"write_bytes\": {} }}{comma}",
            src.source, src.read_bytes, src.write_bytes
        );
    }
    let _ = writeln!(o, "    ],");
    let _ = writeln!(o, "    \"total_bytes\": {},", t.total_bytes);
    let _ = writeln!(o, "    \"stream_seconds\": {},", fmt_f64(t.stream_seconds));
    let _ = writeln!(o, "    \"transfer_joules\": {}", fmt_f64(t.transfer_joules));
    let _ = writeln!(o, "  }},");
    let e = &doc.exec;
    let a = &e.accel;
    let _ = writeln!(o, "  \"exec\": {{");
    let _ = writeln!(o, "    \"accel\": {{");
    let _ = writeln!(o, "      \"jobs\": {},", a.jobs);
    let _ = writeln!(o, "      \"jobs_failed\": {},", a.jobs_failed);
    let _ = writeln!(o, "      \"lanes\": {},", a.lanes);
    let _ = writeln!(o, "      \"makespan_cycles\": {},", a.makespan_cycles);
    let _ = writeln!(o, "      \"busy_cycles\": {},", a.busy_cycles);
    let _ = writeln!(o, "      \"injected_stall_cycles\": {},", a.injected_stall_cycles);
    let _ = writeln!(o, "      \"output_bytes\": {},", a.output_bytes);
    let _ = writeln!(o, "      \"lane_utilization\": {},", fmt_f64(a.lane_utilization));
    let _ = writeln!(o, "      \"freq_hz\": {},", fmt_f64(a.freq_hz));
    assert!(
        a.lane_profiles.is_empty(),
        "golden writer pins the overlap path, which emits no lane profiles"
    );
    let _ = writeln!(o, "      \"lane_profiles\": [],");
    let oc = &a.opclass;
    let _ = writeln!(
        o,
        "      \"opclass\": {{ \"dispatch\": {}, \"alu\": {}, \"mem\": {}, \"stream\": {} }},",
        oc.dispatch, oc.alu, oc.mem, oc.stream
    );
    let st = &a.stage_cycles;
    let _ = writeln!(
        o,
        "      \"stage_cycles\": {{ \"huffman\": {}, \"snappy\": {}, \"delta\": {} }}",
        st.huffman, st.snappy, st.delta
    );
    let _ = writeln!(o, "    }},");
    let _ = writeln!(o, "    \"mem_stream_seconds\": {},", fmt_f64(e.mem_stream_seconds));
    let _ = writeln!(o, "    \"dma_seconds\": {},", fmt_f64(e.dma_seconds));
    let _ = writeln!(o, "    \"compressed_bytes\": {},", e.compressed_bytes);
    let _ = writeln!(o, "    \"blocks_retried\": {},", e.blocks_retried);
    let _ = writeln!(o, "    \"blocks_fell_back\": {},", e.blocks_fell_back);
    let _ = writeln!(o, "    \"fallback_bytes\": {},", e.fallback_bytes);
    let _ = writeln!(o, "    \"retry_cycles\": {},", e.retry_cycles);
    let _ = writeln!(o, "    \"degraded\": {},", e.degraded);
    let ov = &e.overlap;
    let _ = writeln!(o, "    \"overlap\": {{");
    let _ = writeln!(o, "      \"enabled\": {},", ov.enabled);
    let _ = writeln!(o, "      \"stages\": {},", ov.stages);
    let _ = writeln!(o, "      \"workers\": {},", ov.workers);
    let _ = writeln!(o, "      \"decode_cycles\": {},", ov.decode_cycles);
    let _ = writeln!(o, "      \"multiply_cycles\": {},", ov.multiply_cycles);
    let _ = writeln!(o, "      \"overlapped_makespan_cycles\": {},", ov.overlapped_makespan_cycles);
    let _ = writeln!(o, "      \"serial_makespan_cycles\": {},", ov.serial_makespan_cycles);
    let _ = writeln!(o, "      \"cache_hits\": {},", ov.cache_hits);
    let _ = writeln!(o, "      \"cache_misses\": {},", ov.cache_misses);
    let _ = writeln!(o, "      \"cache_evictions\": {},", ov.cache_evictions);
    let _ = writeln!(o, "      \"cache_hit_bytes\": {}", ov.cache_hit_bytes);
    let _ = writeln!(o, "    }}");
    let _ = writeln!(o, "  }}");
    let _ = writeln!(o, "}}");
    o
}

#[test]
fn golden_trace_matches_the_canonical_run() {
    let doc = canonical_doc();
    let errs = doc.validate();
    assert!(errs.is_empty(), "canonical run fails its own invariants: {errs:?}");
    let rendered = to_golden_json(&doc);

    if std::env::var("RECODE_BLESS_TRACE").is_ok() {
        std::fs::write(FIXTURE, &rendered).expect("write fixture");
        eprintln!("blessed {FIXTURE}");
        return;
    }

    let golden = std::fs::read_to_string(FIXTURE)
        .unwrap_or_else(|e| panic!("{FIXTURE}: {e} (run with RECODE_BLESS_TRACE=1 to create)"));
    if rendered != golden {
        for (i, (got, want)) in rendered.lines().zip(golden.lines()).enumerate() {
            assert_eq!(
                got,
                want,
                "trace drifted from the golden fixture at line {} — if the schema \
                 change is intentional, re-bless with RECODE_BLESS_TRACE=1",
                i + 1
            );
        }
        panic!(
            "trace drifted from the golden fixture: {} lines rendered vs {} in fixture",
            rendered.lines().count(),
            golden.lines().count()
        );
    }
}

#[test]
fn golden_fixture_pins_the_headline_fields() {
    let doc = canonical_doc();
    // Field-level pins, independent of the byte-level comparison: the
    // contract downstream consumers (report/trace-check, dashboards) lean
    // on hardest.
    assert_eq!(doc.schema, "recode-trace/v1");
    assert_eq!(doc.matrix.name, "golden_stencil16");
    assert_eq!((doc.matrix.nrows, doc.matrix.ncols), (256, 256));
    assert!(doc.matrix.nnz > 0);
    assert_eq!(doc.system.lanes, 64);
    let span_names: Vec<&str> = doc.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(span_names, ["exec.overlap", "exec.mem_stream", "exec.dma"]);
    for key in [
        "exec.jobs",
        "pipeline.overlap.stages",
        "pipeline.overlap.decode_cycles",
        "pipeline.overlap.multiply_cycles",
        "pipeline.overlap.makespan_cycles",
        "pipeline.overlap.serial_cycles",
        "pipeline.overlap.saved_cycles",
        "cache.hits",
        "cache.misses",
        "mem.read.compressed_stream",
    ] {
        assert!(doc.counters.contains_key(key), "counter `{key}` missing from the trace");
    }
    assert!(doc.exec.overlap.enabled);
    assert_eq!(doc.exec.overlap.workers, 1);
    assert_eq!(
        doc.block_events.len() as u64,
        doc.counter("exec.jobs"),
        "one block event per decode job"
    );
}

/// The flight recorder must observe, never perturb (ISSUE 7): with the
/// recorder ON the canonical run renders byte-for-byte identical to the
/// fixture — no re-blessing — and the document stays `recode-trace/v1`
/// (the overlap path emits no resilience counters, so nothing promotes
/// the schema).
#[test]
fn golden_trace_is_unchanged_with_the_recorder_enabled() {
    use recode_spmv::core::recorder;
    // Bless first if the fixture does not exist yet; the byte test owns
    // that flow.
    let Ok(golden) = std::fs::read_to_string(FIXTURE) else { return };
    recorder::enable(recorder::DEFAULT_CAPACITY);
    let doc = canonical_doc();
    let events = recorder::drain();
    recorder::disable();
    assert!(!events.is_empty(), "recorder must capture the canonical run");
    assert_eq!(doc.schema, "recode-trace/v1");
    let rendered = to_golden_json(&doc);
    assert_eq!(rendered, golden, "recorder-on run must not move a byte of the golden trace");
}

/// When a real JSON layer is present (CI builds; the offline stub panics),
/// the fixture must parse back into a `TraceDocument` through serde and
/// still validate — proving the hand-rolled emitter writes exactly the
/// schema serde reads.
#[test]
fn golden_fixture_parses_through_serde_where_available() {
    // When bless has not been run yet, the byte test reports it.
    let Ok(golden) = std::fs::read_to_string(FIXTURE) else { return };
    let parsed = std::panic::catch_unwind(|| {
        serde_json::from_str::<TraceDocument>(&golden).map_err(|e| e.to_string())
    });
    let Ok(result) = parsed else {
        eprintln!("serde_json unavailable (stubbed build) — skipping");
        return;
    };
    let doc = result.expect("golden fixture must parse as a TraceDocument");
    let errs = doc.validate();
    assert!(errs.is_empty(), "parsed fixture fails validation: {errs:?}");
    let live = canonical_doc();
    assert_eq!(doc.schema, live.schema);
    assert_eq!(doc.matrix, live.matrix);
    assert_eq!(doc.counters, live.counters);
    assert_eq!(doc.block_events, live.block_events);
    assert_eq!(doc.block_cycles, live.block_cycles);
}
